test/test_disk.ml: Alcotest Astring_contains Disk List Sched Tslang
