test/test_cached.ml: Alcotest Astring_contains List Perennial_core Seplogic Systems Tslang
