test/test_layered.ml: Alcotest Disk Perennial_core Sched Systems Tslang
