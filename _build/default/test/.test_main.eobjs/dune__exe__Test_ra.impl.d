test/test_ra.ml: Alcotest Fmt Int List Option QCheck QCheck_alcotest Ra String
