test/test_servers.ml: Alcotest Array Astring_contains Atomic Char Domain Gfs List Mailboat Mutex Printf Random String
