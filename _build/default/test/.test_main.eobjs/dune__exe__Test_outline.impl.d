test/test_outline.ml: Alcotest Astring_contains List Perennial_core Seplogic Systems
