test/test_mcsim.ml: Alcotest Array Lazy List Mailboat Mcsim Printf
