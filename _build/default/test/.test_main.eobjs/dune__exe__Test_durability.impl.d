test/test_durability.ml: Alcotest Gfs List Mailboat Option Perennial_core Printf QCheck QCheck_alcotest String Tslang
