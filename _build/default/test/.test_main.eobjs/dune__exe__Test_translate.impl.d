test/test_translate.ml: Alcotest Astring_contains Goose List Mailboat String Systems
