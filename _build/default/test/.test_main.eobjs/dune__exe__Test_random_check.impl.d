test/test_random_check.ml: Alcotest Mailboat Perennial_core Systems Tslang
