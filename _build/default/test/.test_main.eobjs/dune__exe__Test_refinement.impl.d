test/test_refinement.ml: Alcotest Astring_contains Perennial_core Sched String Systems Tslang
