test/test_mailboat.ml: Alcotest Astring_contains Gfs Mailboat Map Option Perennial_core Sched String Tslang
