test/test_patterns.ml: Alcotest List Perennial_core Seplogic Systems Tslang
