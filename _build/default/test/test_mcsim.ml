(* Tests for the discrete-event multicore simulator and the Figure 11 cost
   model: engine invariants, contention behaviour, and the paper's shape
   claims. *)

module Sim = Mcsim.Sim
module M = Mcsim.Mail_model

let rps ~cores reqs = Sim.throughput (Sim.run ~cores reqs)

(* --- engine --- *)

let test_pure_cpu_scales_linearly () =
  (* CPU-only requests, GC disabled by a huge quantum: perfect scaling *)
  let reqs = Array.make 1000 [ Sim.Cpu 10. ] in
  let t1 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:1 reqs) in
  let t4 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:4 reqs) in
  Alcotest.(check bool)
    (Printf.sprintf "4 cores ~4x (%.0f vs %.0f)" t4 t1)
    true
    (t4 /. t1 > 3.7 && t4 /. t1 < 4.3)

let test_serial_resource_caps_throughput () =
  (* requests that are almost entirely serialized cannot scale *)
  let reqs = Array.make 1000 [ Sim.Serial ("r", 10.) ] in
  let t1 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:1 reqs) in
  let t8 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:8 reqs) in
  Alcotest.(check bool)
    (Printf.sprintf "8 cores no faster (%.0f vs %.0f)" t8 t1)
    true
    (t8 /. t1 < 1.15)

let test_single_core_time_is_sum () =
  let reqs = Array.make 100 [ Sim.Cpu 5.; Sim.Serial ("r", 5.) ] in
  let out = Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:1 reqs in
  (* 100 requests x 10us = 1000us *)
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.0f ~ 1000" out.Sim.makespan_us)
    true
    (out.Sim.makespan_us > 995. && out.Sim.makespan_us < 1005.)

let test_locks_serialize_holders () =
  (* all requests fight over one lock held for the whole request *)
  let reqs = Array.make 500 [ Sim.Lock 0; Sim.Cpu 10.; Sim.Unlock 0 ] in
  let t1 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:1 reqs) in
  let t6 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:6 reqs) in
  Alcotest.(check bool) "lock-bound" true (t6 /. t1 < 1.2)

let test_disjoint_locks_scale () =
  (* requests on distinct locks do scale *)
  let reqs =
    Array.init 600 (fun i -> [ Sim.Lock (i mod 100); Sim.Cpu 10.; Sim.Unlock (i mod 100) ])
  in
  let t1 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:1 reqs) in
  let t4 = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:4 reqs) in
  Alcotest.(check bool) "scales" true (t4 /. t1 > 3.0)

let test_all_requests_complete () =
  let reqs = Array.init 777 (fun i -> [ Sim.Cpu (float_of_int (1 + (i mod 7))) ]) in
  let out = Sim.run ~cores:5 reqs in
  Alcotest.(check int) "total" 777 out.Sim.total;
  Alcotest.(check int) "per-core sums" 777 (Array.fold_left ( + ) 0 out.Sim.per_core_completed)

let test_gc_degrades_scaling () =
  let reqs = Array.make 2000 [ Sim.Cpu 10. ] in
  let without = Sim.throughput (Sim.run ~gc_quantum:1e9 ~gc_slice:0. ~cores:8 reqs) in
  let with_gc = Sim.throughput (Sim.run ~gc_quantum:50. ~gc_slice:10. ~cores:8 reqs) in
  Alcotest.(check bool) "gc hurts" true (with_gc < without *. 0.8)

let test_determinism () =
  let reqs = Array.make 300 [ Sim.Cpu 3.; Sim.Serial ("v", 1.); Sim.Lock 1; Sim.Unlock 1 ] in
  let a = Sim.run ~cores:3 reqs and b = Sim.run ~cores:3 reqs in
  Alcotest.(check bool) "same makespan" true (a.Sim.makespan_us = b.Sim.makespan_us)

(* --- the Figure 11 model --- *)

let fig11 = lazy (M.figure11 ~requests:10_000 ())

let series kind = List.find (fun (s : M.series) -> s.kind = kind) (Lazy.force fig11)

let test_fig11_single_core_ratios () =
  let mb = M.throughput_at (series Mailboat.Server.Mailboat_server) 1 in
  let gm = M.throughput_at (series Mailboat.Server.Gomail) 1 in
  let cm = M.throughput_at (series Mailboat.Server.Cmail) 1 in
  let r1 = mb /. gm and r2 = gm /. cm in
  Alcotest.(check bool)
    (Printf.sprintf "Mailboat/GoMail %.2f in [1.6,2.0]" r1)
    true (r1 > 1.6 && r1 < 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "GoMail/CMAIL %.2f in [1.2,1.5]" r2)
    true (r2 > 1.2 && r2 < 1.5)

let test_fig11_ordering_everywhere () =
  let mb = series Mailboat.Server.Mailboat_server in
  let gm = series Mailboat.Server.Gomail in
  let cm = series Mailboat.Server.Cmail in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "order at %d cores" c)
        true
        (M.throughput_at mb c > M.throughput_at gm c
        && M.throughput_at gm c > M.throughput_at cm c))
    (List.init 12 (fun i -> i + 1))

let test_fig11_monotone_and_sublinear () =
  let mb = series Mailboat.Server.Mailboat_server in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "monotone at %d" c)
        true
        (M.throughput_at mb (c + 1) >= M.throughput_at mb c *. 0.99))
    (List.init 11 (fun i -> i + 1));
  let speedup = M.throughput_at mb 12 /. M.throughput_at mb 1 in
  Alcotest.(check bool)
    (Printf.sprintf "sublinear: %.1fx at 12 cores" speedup)
    true
    (speedup > 3. && speedup < 11.)

let test_fig11_mailbox_dynamics () =
  (* a pickup after more deliveries must cost more: compile a stream with a
     hot mailbox and check its pickup dominates a cold one *)
  let hot =
    M.compile ~kind:Mailboat.Server.Mailboat_server
      [ Mailboat.Workload.Smtp_deliver { user = 0; msg = "m" };
        Mailboat.Workload.Smtp_deliver { user = 0; msg = "m" };
        Mailboat.Workload.Smtp_deliver { user = 0; msg = "m" };
        Mailboat.Workload.Pop3_session { user = 0 } ]
  in
  let cold =
    M.compile ~kind:Mailboat.Server.Mailboat_server
      [ Mailboat.Workload.Pop3_session { user = 0 } ]
  in
  let actions_len l = List.length l in
  Alcotest.(check bool) "hot pickup longer" true
    (actions_len hot.(3) > actions_len cold.(0))

let suite =
  [
    Alcotest.test_case "cpu-only scales linearly" `Quick test_pure_cpu_scales_linearly;
    Alcotest.test_case "serial resource caps scaling" `Quick test_serial_resource_caps_throughput;
    Alcotest.test_case "single-core time is the sum" `Quick test_single_core_time_is_sum;
    Alcotest.test_case "contended lock serializes" `Quick test_locks_serialize_holders;
    Alcotest.test_case "disjoint locks scale" `Quick test_disjoint_locks_scale;
    Alcotest.test_case "all requests complete" `Quick test_all_requests_complete;
    Alcotest.test_case "gc degrades scaling" `Quick test_gc_degrades_scaling;
    Alcotest.test_case "deterministic" `Quick test_determinism;
    Alcotest.test_case "fig11: single-core ratios" `Quick test_fig11_single_core_ratios;
    Alcotest.test_case "fig11: ordering everywhere" `Quick test_fig11_ordering_everywhere;
    Alcotest.test_case "fig11: monotone + sublinear" `Quick test_fig11_monotone_and_sublinear;
    Alcotest.test_case "fig11: mailbox-size dynamics" `Quick test_fig11_mailbox_dynamics;
  ]
