(* Tests for the §9.1 crash-safety pattern systems: shadow copy, write-ahead
   log, group commit — refinement-checked exhaustively, with seeded bugs
   rejected — and the WAL proof outlines (recovery helping). *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module O = Perennial_core.Outline
module Sc = Systems.Shadow_copy
module W = Systems.Wal
module Gc = Systems.Group_commit

let expect_holds name cfg =
  match R.check cfg with
  | R.Refinement_holds _ -> ()
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violation name cfg =
  match R.check cfg with
  | R.Refinement_violated _ -> ()
  | R.Refinement_holds stats -> Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let vx = V.str "x"
let vy = V.str "y"

(* --- shadow copy --- *)

let test_shadow_write_crash () =
  expect_holds "shadow write with crash"
    (Sc.checker_config ~max_crashes:1 [ [ Sc.write_call vx vy ] ])

let test_shadow_two_writers () =
  expect_holds "shadow two writers"
    (Sc.checker_config ~max_crashes:1
       [ [ Sc.write_call vx vy ]; [ Sc.write_call vy vx ] ])

let test_shadow_writer_reader () =
  expect_holds "shadow writer/reader"
    (Sc.checker_config ~max_crashes:1 [ [ Sc.write_call vx vy ]; [ Sc.read_call ] ])

let test_shadow_seq_writes () =
  expect_holds "shadow sequential writes"
    (Sc.checker_config ~max_crashes:1
       [ [ Sc.write_call vx vx; Sc.write_call vy vy ] ])

let test_shadow_bug_in_place () =
  expect_violation "shadow in-place write"
    (Sc.checker_config ~max_crashes:1 [ [ Sc.Buggy.write_call_in_place vx vy ] ])

let test_shadow_bug_flip_first () =
  expect_violation "shadow flip-before-fill"
    (Sc.checker_config ~max_crashes:1 [ [ Sc.Buggy.write_call_flip_first vx vy ] ])

(* --- write-ahead log --- *)

let test_wal_write_crash () =
  expect_holds "wal write with crash"
    (W.checker_config ~max_crashes:1 [ [ W.write_call vx vy ] ])

let test_wal_crash_during_recovery () =
  expect_holds "wal crash during recovery"
    (W.checker_config ~max_crashes:2 [ [ W.write_call vx vy ] ])

let test_wal_writer_reader () =
  expect_holds "wal writer/reader"
    (W.checker_config ~max_crashes:1 [ [ W.write_call vx vy ]; [ W.read_call ] ])

let test_wal_bug_no_log () =
  expect_violation "wal apply without log"
    (W.checker_config ~max_crashes:1 [ [ W.Buggy.write_call_no_log vx vy ] ])

let test_wal_bug_commit_first () =
  expect_violation "wal commit before log"
    (Perennial_core.Refinement.config ~spec:W.spec ~init_world:(W.init_world ())
       ~crash_world:W.crash_world ~pp_world:W.pp_world
       ~threads:[ [ W.Buggy.write_call_commit_first vx vy ] ]
       ~recovery:W.recover_prog ~post:[ W.read_call ] ~max_crashes:1 ())

let test_wal_bug_recover_clear_first () =
  (* Needs two crashes: one mid-apply, one mid-(broken)-recovery. *)
  expect_violation "wal recovery clears flag first"
    (Perennial_core.Refinement.config ~spec:W.spec ~init_world:(W.init_world ())
       ~crash_world:W.crash_world ~pp_world:W.pp_world
       ~threads:[ [ W.write_call vx vy ] ]
       ~recovery:W.Buggy.recover_clear_first ~post:[ W.read_call ] ~max_crashes:2 ())

let test_wal_bug_recover_nop () =
  expect_violation "wal no recovery"
    (Perennial_core.Refinement.config ~spec:W.spec ~init_world:(W.init_world ())
       ~crash_world:W.crash_world ~pp_world:W.pp_world
       ~threads:[ [ W.write_call vx vy ] ]
       ~recovery:W.Buggy.recover_nop ~post:[ W.read_call ] ~max_crashes:1 ())

(* --- group commit --- *)

let test_gc_write_flush_crash () =
  expect_holds "group commit write+flush with crash"
    (Gc.checker_config ~max_crashes:1 [ [ Gc.write_call vx vy; Gc.flush_call ] ])

let test_gc_concurrent_writers () =
  expect_holds "group commit concurrent writers"
    (Gc.checker_config ~max_crashes:1
       [ [ Gc.write_call vx vx ]; [ Gc.write_call vy vy; Gc.flush_call ] ])

let test_gc_reader () =
  expect_holds "group commit reader sees buffered"
    (Gc.checker_config ~max_crashes:0 [ [ Gc.write_call vx vy ]; [ Gc.read_call ] ])

let test_gc_strict_spec_rejected () =
  (* Against a crash spec that forbids losing buffered transactions, the
     implementation must fail — this is what the lossy spec exists for. *)
  expect_violation "group commit vs strict spec"
    (Gc.checker_config ~spec:Gc.strict_spec ~max_crashes:1
       [ [ Gc.write_call vx vy ] ])

let test_gc_lossy_spec_holds () =
  expect_holds "group commit vs lossy spec"
    (Gc.checker_config ~max_crashes:1 [ [ Gc.write_call vx vy ] ])

(* --- WAL proof outlines --- *)

let test_wal_proof_accepted () =
  List.iter
    (fun (name, r) ->
      match r with
      | O.Accepted _ -> ()
      | O.Rejected why -> Alcotest.failf "wal %s rejected: %s" name why)
    (Systems.Wal_proof.check ())

let test_wal_proof_helping_required () =
  (* Remove the Simulate from recovery's replay path: the flag can no longer
     be cleared because the abstract state cannot match the disks. *)
  let broken =
    {
      O.r_body =
        [
          O.Synthesize "data0"; O.Synthesize "data1"; O.Synthesize "flag";
          O.Synthesize "log0"; O.Synthesize "log1";
          O.Read_durable { loc = "flag"; bind = "f" };
          O.Read_durable { loc = "log0"; bind = "r0" };
          O.Read_durable { loc = "log1"; bind = "r1" };
          O.Choice
            [
              [
                O.Atomic [ O.Write_durable { loc = "data0"; value = Seplogic.Sval.var "r0" } ];
                O.Atomic [ O.Write_durable { loc = "data1"; value = Seplogic.Sval.var "r1" } ];
                O.Atomic [ O.Write_durable { loc = "flag"; value = Seplogic.Sval.str "e" } ];
              ];
              [];
            ];
          O.Crash_step;
        ];
    }
  in
  match O.check_recovery Systems.Wal_proof.system broken with
  | O.Rejected _ -> ()
  | O.Accepted r ->
    Alcotest.failf "recovery without helping unexpectedly accepted (%a)" O.pp_report r

let suite =
  [
    Alcotest.test_case "shadow: write with crash" `Quick test_shadow_write_crash;
    Alcotest.test_case "shadow: two writers" `Quick test_shadow_two_writers;
    Alcotest.test_case "shadow: writer/reader" `Quick test_shadow_writer_reader;
    Alcotest.test_case "shadow: sequential writes" `Quick test_shadow_seq_writes;
    Alcotest.test_case "shadow bug: in-place write" `Quick test_shadow_bug_in_place;
    Alcotest.test_case "shadow bug: flip before fill" `Quick test_shadow_bug_flip_first;
    Alcotest.test_case "wal: write with crash" `Quick test_wal_write_crash;
    Alcotest.test_case "wal: crash during recovery" `Quick test_wal_crash_during_recovery;
    Alcotest.test_case "wal: writer/reader" `Quick test_wal_writer_reader;
    Alcotest.test_case "wal bug: no log" `Quick test_wal_bug_no_log;
    Alcotest.test_case "wal bug: commit before log" `Quick test_wal_bug_commit_first;
    Alcotest.test_case "wal bug: recovery clears flag first" `Quick test_wal_bug_recover_clear_first;
    Alcotest.test_case "wal bug: no recovery" `Quick test_wal_bug_recover_nop;
    Alcotest.test_case "gc: write+flush with crash" `Quick test_gc_write_flush_crash;
    Alcotest.test_case "gc: concurrent writers" `Quick test_gc_concurrent_writers;
    Alcotest.test_case "gc: reader sees buffered" `Quick test_gc_reader;
    Alcotest.test_case "gc: strict spec rejected" `Quick test_gc_strict_spec_rejected;
    Alcotest.test_case "gc: lossy spec holds" `Quick test_gc_lossy_spec_holds;
    Alcotest.test_case "wal proof accepted" `Quick test_wal_proof_accepted;
    Alcotest.test_case "wal proof: helping required" `Quick test_wal_proof_helping_required;
  ]
