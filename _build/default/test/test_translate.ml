(* Tests for the translator's Coq-model emission (§7): each construct of
   the subset must render into the expected model form, and the output must
   be stable enough to audit. *)

let translate_ok src =
  match Goose.Translate.translate src with
  | Ok coq -> coq
  | Error e -> Alcotest.failf "translate failed: %s" e

let contains = Astring_contains.contains

let test_emit_function_signature () =
  let coq = translate_ok "package p\nfunc f(x uint64, s string) bool {\n\treturn true\n}" in
  Alcotest.(check bool) "definition" true
    (contains coq "Definition f (x : uint64) (s : string) : proc bool :=");
  Alcotest.(check bool) "ret" true (contains coq "Ret true")

let test_emit_struct () =
  let coq =
    translate_ok "package p\ntype T struct {\n\tA uint64\n\tB string\n}\nfunc f() T {\n\treturn T{A: 1, B: \"x\"}\n}"
  in
  Alcotest.(check bool) "record" true (contains coq "Module T.");
  Alcotest.(check bool) "fields" true (contains coq "A : uint64;");
  Alcotest.(check bool) "literal" true (contains coq "T.A := 1")

let test_emit_slices_and_maps () =
  let coq =
    translate_ok
      "package p\nfunc f() uint64 {\n\ts := []uint64{1, 2}\n\ts = append(s, 3)\n\tm := make(map[string]uint64)\n\tm[\"k\"] = len(s)\n\treturn m[\"k\"]\n}"
  in
  Alcotest.(check bool) "slice literal" true (contains coq "slice_of uint64 [1; 2]");
  Alcotest.(check bool) "append" true (contains coq "Data.sliceAppend");
  Alcotest.(check bool) "new map" true (contains coq "Data.newMap");
  Alcotest.(check bool) "len" true (contains coq "(len s)")

let test_emit_control_flow () =
  let coq =
    translate_ok
      "package p\nfunc f(n uint64) uint64 {\n\ts := 0\n\tfor i := 0; i < n; i = i + 1 {\n\t\tif i > 2 {\n\t\t\tbreak\n\t\t}\n\t\ts = s + i\n\t}\n\treturn s\n}"
  in
  Alcotest.(check bool) "loop" true (contains coq "Loop (");
  Alcotest.(check bool) "while" true (contains coq "while (i < n) do");
  Alcotest.(check bool) "break" true (contains coq "LoopBreak")

let test_emit_stdlib_calls () =
  let coq =
    translate_ok
      "package p\nfunc f() {\n\tfd, _ := filesys.Create(\"d\", \"n\")\n\tfilesys.Append(fd, []byte(\"x\"))\n\tfilesys.Close(fd)\n\tsync.Lock(0)\n\tsync.Unlock(0)\n}"
  in
  Alcotest.(check bool) "fs create" true (contains coq "FS.create");
  Alcotest.(check bool) "fs append" true (contains coq "FS.append");
  Alcotest.(check bool) "lock" true (contains coq "Lock.lock");
  Alcotest.(check bool) "two-result bind" true (contains coq "let! (fd, _) <-")

let test_emit_range () =
  let coq =
    translate_ok
      "package p\nfunc f(names []string) uint64 {\n\tn := 0\n\tfor _, x := range names {\n\t\tn = n + len(x)\n\t}\n\treturn n\n}"
  in
  Alcotest.(check bool) "forRange" true (contains coq "Data.forRange names (fun _ x =>")

let test_emit_is_deterministic () =
  let a = translate_ok Mailboat.Goose_src.source in
  let b = translate_ok Mailboat.Goose_src.source in
  Alcotest.(check bool) "stable output" true (String.equal a b)

let test_all_checked_sources_translate () =
  List.iter
    (fun (name, src) ->
      match Goose.Translate.translate src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s does not translate: %s" name e)
    [ ("mailboat.go", Mailboat.Goose_src.source); ("wal.go", Systems.Wal_go.source);
      ("shadow.go", Systems.Shadow_go.source); ("replicated_disk.go", Systems.Rd_go.source) ]

let suite =
  [
    Alcotest.test_case "function signature" `Quick test_emit_function_signature;
    Alcotest.test_case "struct" `Quick test_emit_struct;
    Alcotest.test_case "slices and maps" `Quick test_emit_slices_and_maps;
    Alcotest.test_case "control flow" `Quick test_emit_control_flow;
    Alcotest.test_case "stdlib calls" `Quick test_emit_stdlib_calls;
    Alcotest.test_case "range" `Quick test_emit_range;
    Alcotest.test_case "deterministic output" `Quick test_emit_is_deterministic;
    Alcotest.test_case "all shipped sources translate" `Quick test_all_checked_sources_translate;
  ]
