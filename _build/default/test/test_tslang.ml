(* Tests for the transition-system DSL: Value, Transition, Spec. *)

open Tslang

let value_testable = Alcotest.testable Value.pp Value.equal

module V = Value
module T = Transition
open T.Syntax

(* A tiny counter spec used throughout. *)
let incr_op : (int, V.t) T.t =
  let* n = T.reads in
  let* () = T.puts (n + 1) in
  T.ret (V.int n)

let bounded_incr limit : (int, V.t) T.t =
  let* n = T.reads in
  let* () = T.check (n < limit) in
  let* () = T.puts (n + 1) in
  T.ret (V.int n)

(* --- Value tests --- *)

let test_value_equal () =
  Alcotest.(check bool) "unit" true (V.equal V.unit V.unit);
  Alcotest.(check bool) "int eq" true (V.equal (V.int 3) (V.int 3));
  Alcotest.(check bool) "int neq" false (V.equal (V.int 3) (V.int 4));
  Alcotest.(check bool) "cross-type" false (V.equal (V.int 0) (V.bool false));
  Alcotest.(check bool) "pair" true
    (V.equal (V.pair (V.str "a") V.none) (V.pair (V.str "a") V.none));
  Alcotest.(check bool) "list len" false (V.equal (V.list [ V.unit ]) (V.list []))

let test_value_compare_total () =
  let samples =
    [ V.unit; V.bool true; V.bool false; V.int 1; V.int 2; V.str "x";
      V.pair (V.int 1) (V.int 2); V.list [ V.int 1 ]; V.none; V.some V.unit ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = V.compare a b and c2 = V.compare b a in
          Alcotest.(check bool) "antisym" true (Int.compare c1 0 = -Int.compare c2 0);
          if c1 = 0 then Alcotest.(check bool) "eq consistent" true (V.equal a b))
        samples)
    samples

let test_value_projections () =
  Alcotest.(check int) "get_int" 7 (V.get_int (V.int 7));
  Alcotest.(check string) "get_str" "hi" (V.get_str (V.str "hi"));
  Alcotest.check_raises "wrong projection"
    (Invalid_argument "Value.get_int: \"hi\"") (fun () ->
      ignore (V.get_int (V.str "hi")))

(* --- Transition tests --- *)

let test_ret_pure () =
  match T.run (T.ret 42) 0 with
  | [ T.Ok (0, 42) ] -> ()
  | _ -> Alcotest.fail "ret should not change state"

let test_gets_modify () =
  let tr =
    let* n = T.gets (fun s -> s * 2) in
    let* () = T.modify (fun s -> s + 1) in
    T.ret n
  in
  match T.run tr 10 with
  | [ T.Ok (11, 20) ] -> ()
  | _ -> Alcotest.fail "gets/modify sequencing"

let test_undefined_taints_branch () =
  Alcotest.(check bool) "has_undefined" true (T.has_undefined (bounded_incr 5) 5);
  Alcotest.(check bool) "no undefined below limit" false
    (T.has_undefined (bounded_incr 5) 4)

let test_choose_enumerates () =
  let tr =
    let* v = T.choose [ 1; 2; 3 ] in
    let* () = T.modify (fun s -> s + v) in
    T.ret v
  in
  let outs = T.outcomes tr 0 in
  Alcotest.(check int) "three outcomes" 3 (List.length outs);
  Alcotest.(check bool) "states" true
    (List.for_all (fun (s, v) -> s = v) outs)

let test_choose_empty_unsat () =
  Alcotest.(check int) "no outcomes" 0 (List.length (T.run (T.choose []) 0));
  Alcotest.(check bool) "guard false prunes" true (T.outcomes (T.guard false) 0 = [])

let test_guard_vs_check () =
  Alcotest.(check bool) "guard true" true (T.outcomes (T.guard true) 0 = [ (0, ()) ]);
  Alcotest.(check bool) "check false is UB" true (T.has_undefined (T.check false) 0)

let test_determinism () =
  Alcotest.(check bool) "incr deterministic" true (T.is_deterministic incr_op 0);
  Alcotest.(check bool) "choose not" false
    (T.is_deterministic (T.choose [ 1; 2 ]) 0);
  Alcotest.(check bool) "undefined not" false (T.is_deterministic T.undefined 0)

let test_nested_nondet_bind () =
  let tr =
    let* a = T.choose [ 0; 1 ] in
    let* b = T.choose [ 0; 10 ] in
    T.ret (a + b)
  in
  let vs = List.map snd (T.outcomes tr ()) |> List.sort Int.compare in
  Alcotest.(check (list int)) "cartesian" [ 0; 1; 10; 11 ] vs

let test_undefined_under_choice () =
  (* Only one branch is undefined; the other outcomes survive. *)
  let tr =
    let* a = T.choose [ 0; 1 ] in
    let* () = T.check (a = 0) in
    T.ret a
  in
  Alcotest.(check bool) "ub present" true (T.has_undefined tr ());
  Alcotest.(check (list int)) "defined branch kept" [ 0 ]
    (List.map snd (T.outcomes tr ()))

(* --- Spec tests --- *)

let counter_spec : int Spec.t =
  {
    Spec.name = "counter";
    init = 0;
    compare_state = Int.compare;
    pp_state = Fmt.int;
    step =
      (fun op args ->
        match op, args with
        | "incr", [] -> incr_op
        | "get", [] -> T.gets (fun n -> V.int n)
        | "reset", [] -> T.bind (T.puts 0) (fun () -> T.ret V.unit)
        | _ -> invalid_arg ("counter: unknown op " ^ op));
    crash = T.puts 0;
  }

let test_spec_ops () =
  let c = Spec.call "incr" [] in
  (match Spec.op_outcomes counter_spec 5 c with
  | [ (6, v) ] -> Alcotest.check value_testable "returns old" (V.int 5) v
  | _ -> Alcotest.fail "incr outcome");
  Alcotest.(check (list int)) "crash resets" [ 0 ]
    (Spec.crash_outcomes counter_spec 9)

let test_spec_call_equal () =
  Alcotest.(check bool) "same" true
    (Spec.equal_call (Spec.call "a" [ V.int 1 ]) (Spec.call "a" [ V.int 1 ]));
  Alcotest.(check bool) "diff args" false
    (Spec.equal_call (Spec.call "a" [ V.int 1 ]) (Spec.call "a" [ V.int 2 ]));
  Alcotest.(check bool) "diff arity" false
    (Spec.equal_call (Spec.call "a" []) (Spec.call "a" [ V.int 2 ]))

let test_spec_unknown_op () =
  Alcotest.check_raises "unknown op"
    (Invalid_argument "counter: unknown op nope") (fun () ->
      ignore (Spec.op_outcomes counter_spec 0 (Spec.call "nope" [])))

(* --- The paper's replicated-disk spec (Figure 3) as a sanity check --- *)

module AddrMap = Map.Make (Int)

type rd_state = V.t AddrMap.t

let rd_spec_step op args : (rd_state, V.t) T.t =
  match op, args with
  | "rd_read", [ V.Int a ] ->
    let* mv = T.gets (AddrMap.find_opt a) in
    (match mv with Some v -> T.ret v | None -> T.undefined)
  | "rd_write", [ V.Int a; v ] ->
    let* mv = T.gets (AddrMap.find_opt a) in
    (match mv with
    | Some _ ->
      let* () = T.modify (AddrMap.add a v) in
      T.ret V.unit
    | None -> T.undefined)
  | _ -> invalid_arg "rd spec"

let rd_init size = List.init size (fun a -> (a, V.str "0")) |> List.to_seq |> AddrMap.of_seq

let test_rd_spec_figure3 () =
  let s = rd_init 3 in
  (* read in bounds *)
  (match T.outcomes (rd_spec_step "rd_read" [ V.int 1 ]) s with
  | [ (s', v) ] ->
    Alcotest.check value_testable "initial zero" (V.str "0") v;
    Alcotest.(check bool) "state unchanged" true (AddrMap.equal V.equal s s')
  | _ -> Alcotest.fail "rd_read outcome");
  (* write then read *)
  let s' =
    match T.outcomes (rd_spec_step "rd_write" [ V.int 2; V.str "x" ]) s with
    | [ (s', V.Unit) ] -> s'
    | _ -> Alcotest.fail "rd_write outcome"
  in
  (match T.outcomes (rd_spec_step "rd_read" [ V.int 2 ]) s' with
  | [ (_, v) ] -> Alcotest.check value_testable "reads back" (V.str "x") v
  | _ -> Alcotest.fail "read-back");
  (* out of bounds is UB *)
  Alcotest.(check bool) "oob read UB" true
    (T.has_undefined (rd_spec_step "rd_read" [ V.int 9 ]) s);
  Alcotest.(check bool) "oob write UB" true
    (T.has_undefined (rd_spec_step "rd_write" [ V.int 9; V.str "x" ]) s)

(* --- remaining combinators --- *)

let test_ignore_ret () =
  match T.run (T.ignore_ret incr_op) 3 with
  | [ T.Ok (4, ()) ] -> ()
  | _ -> Alcotest.fail "ignore_ret drops the value, keeps the effect"

let test_pp_outcome () =
  let s = Fmt.str "%a" (T.pp_outcome Fmt.int Fmt.int) (T.Ok (1, 2)) in
  Alcotest.(check bool) "ok rendering" true (Astring_contains.contains s "Ok");
  let s' =
    Fmt.str "%a" (T.pp_outcome Fmt.int Fmt.int) (T.Undefined_behaviour : (int, int) T.outcome)
  in
  Alcotest.(check string) "ub rendering" "undefined" s'

let test_pp_call () =
  let s = Fmt.str "%a" Spec.pp_call (Spec.call "rd_write" [ V.int 0; V.str "x" ]) in
  Alcotest.(check bool) "has op name" true (Astring_contains.contains s "rd_write(");
  Alcotest.(check bool) "has args" true
    (Astring_contains.contains s "0" && Astring_contains.contains s "\"x\"")

(* --- property tests --- *)

let gen_value =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let base =
        oneof
          [ return V.Unit; map V.bool bool; map V.int small_nat;
            map V.str (string_size (return 3)) ]
      in
      if n <= 0 then base
      else
        frequency
          [ (3, base);
            (1, map2 V.pair (self (n / 2)) (self (n / 2)));
            (1, map V.list (list_size (int_bound 3) (self (n / 2)))) ])

let arb_value = QCheck.make ~print:V.to_string gen_value

let prop_value_equal_refl =
  QCheck.Test.make ~name:"Value.equal reflexive" ~count:200 arb_value (fun v ->
      V.equal v v)

let prop_value_compare_eq =
  QCheck.Test.make ~name:"Value.compare 0 <-> equal" ~count:200
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      V.compare a b = 0 = V.equal a b)

let prop_value_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equal" ~count:200 arb_value (fun v ->
      V.hash v = V.hash v)

let prop_run_ret_identity =
  QCheck.Test.make ~name:"run (ret v) = [Ok (s, v)]" ~count:100
    QCheck.(pair small_int small_int) (fun (s, v) ->
      T.run (T.ret v) s = [ T.Ok (s, v) ])

let prop_bind_assoc =
  (* Monad associativity observed through run. *)
  QCheck.Test.make ~name:"bind associativity (observational)" ~count:100
    QCheck.small_int (fun s ->
      let m = T.choose [ 1; 2 ] in
      let f x = T.modify (fun st -> st + x) in
      let g () = T.reads in
      let lhs = T.bind (T.bind m f) g in
      let rhs = T.bind m (fun x -> T.bind (f x) g) in
      T.run lhs s = T.run rhs s)

let prop_choose_order =
  QCheck.Test.make ~name:"choose enumerates all values" ~count:100
    QCheck.(small_list small_int) (fun vs ->
      List.map snd (T.outcomes (T.choose vs) ()) = vs)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_value_equal_refl; prop_value_compare_eq; prop_value_hash_consistent;
      prop_run_ret_identity; prop_bind_assoc; prop_choose_order ]

let suite =
  [
    Alcotest.test_case "value equal" `Quick test_value_equal;
    Alcotest.test_case "value compare total" `Quick test_value_compare_total;
    Alcotest.test_case "value projections" `Quick test_value_projections;
    Alcotest.test_case "ret is pure" `Quick test_ret_pure;
    Alcotest.test_case "gets/modify" `Quick test_gets_modify;
    Alcotest.test_case "undefined taints branch" `Quick test_undefined_taints_branch;
    Alcotest.test_case "choose enumerates" `Quick test_choose_enumerates;
    Alcotest.test_case "empty choice unsatisfiable" `Quick test_choose_empty_unsat;
    Alcotest.test_case "guard vs check" `Quick test_guard_vs_check;
    Alcotest.test_case "determinism predicate" `Quick test_determinism;
    Alcotest.test_case "nested nondet bind" `Quick test_nested_nondet_bind;
    Alcotest.test_case "undefined under choice" `Quick test_undefined_under_choice;
    Alcotest.test_case "spec ops" `Quick test_spec_ops;
    Alcotest.test_case "spec call equality" `Quick test_spec_call_equal;
    Alcotest.test_case "unknown op raises" `Quick test_spec_unknown_op;
    Alcotest.test_case "replicated-disk spec (Fig. 3)" `Quick test_rd_spec_figure3;
    Alcotest.test_case "ignore_ret" `Quick test_ignore_ret;
    Alcotest.test_case "pp_outcome" `Quick test_pp_outcome;
    Alcotest.test_case "pp_call" `Quick test_pp_call;
  ]
  @ qcheck_tests
