(* Tests for the Mailboat core (§8): exhaustive refinement checks of
   deliver/pickup/delete with crashes and recovery, plus the §9.5 seeded
   bugs. *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module M = Mailboat.Core
module SMap = Map.Make (String)

let expect_holds name cfg =
  match R.check cfg with
  | R.Refinement_holds _ -> ()
  | R.Refinement_violated (f, _) -> Alcotest.failf "%s: %a" name R.pp_failure f
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

let expect_violation name cfg =
  match R.check cfg with
  | R.Refinement_violated _ -> ()
  | R.Refinement_holds stats -> Alcotest.failf "%s: bug not caught (%a)" name R.pp_stats stats
  | R.Budget_exhausted stats ->
    Alcotest.failf "%s: budget exhausted (%a)" name R.pp_stats stats

(* A world and matching spec state with one message pre-delivered. *)
let seeded_world_and_state ~users u id msg =
  let w = M.init_world ~users () in
  let fs = w.M.fs in
  let fs, fd = Option.get (Gfs.Fs.create fs (M.user_dir u) id) in
  let fs = Option.get (Gfs.Fs.append fs fd msg) in
  let fs = Option.get (Gfs.Fs.close fs fd) in
  let st =
    SMap.add (M.user_dir u) (SMap.singleton id msg) (M.spec_init ~users)
  in
  ({ w with M.fs }, st)

(* --- the real Mailboat --- *)

let test_deliver_crash () =
  expect_holds "deliver with crash"
    (M.checker_config ~users:1 ~max_crashes:1 [ [ M.deliver_call 0 "ab" ] ])

let test_deliver_pickup_concurrent () =
  (* §8.2 Pickup/Deliver: concurrent delivery during a pickup session. *)
  expect_holds "deliver concurrent with pickup"
    (M.checker_config ~users:1 ~max_crashes:0
       [ [ M.deliver_call 0 "ab" ]; [ M.pickup_call 0; M.unlock_call 0 ] ])

let test_two_delivers_same_user () =
  (* §8.2 Deliver/Deliver: random IDs with collision retry. *)
  expect_holds "two delivers same user"
    (M.checker_config ~users:1 ~max_crashes:0
       [ [ M.deliver_call 0 "ab" ]; [ M.deliver_call 0 "cd" ] ])

let test_pickup_delete_session () =
  let w, st = seeded_world_and_state ~users:1 0 "m0" "hi" in
  let spec = { (M.spec ~users:1) with Tslang.Spec.init = st } in
  expect_holds "pickup/delete session"
    (R.config ~spec ~init_world:w ~crash_world:M.crash_world ~pp_world:M.pp_world
       ~threads:
         [ [ M.pickup_call 0; M.delete_call 0 "m0"; M.unlock_call 0 ] ]
       ~recovery:M.recover_prog
       ~post:[ M.pickup_call 0; M.unlock_call 0 ]
       ~max_crashes:1 ())

let test_delete_vs_deliver () =
  let w, st = seeded_world_and_state ~users:1 0 "m0" "hi" in
  let spec = { (M.spec ~users:1) with Tslang.Spec.init = st } in
  expect_holds "delete concurrent with deliver"
    (R.config ~spec ~init_world:w ~crash_world:M.crash_world ~pp_world:M.pp_world
       ~threads:
         [ [ M.pickup_call 0; M.delete_call 0 "m0"; M.unlock_call 0 ];
           [ M.deliver_call 0 "xy" ] ]
       ~recovery:M.recover_prog
       ~post:[ M.pickup_call 0; M.unlock_call 0 ]
       ~max_crashes:0 ())

let test_two_users_isolated () =
  expect_holds "two users isolated"
    (M.checker_config ~users:2 ~max_crashes:0
       [ [ M.deliver_call 0 "ab" ]; [ M.deliver_call 1 "cd" ] ])

let test_crash_during_recovery () =
  expect_holds "crash during recovery"
    (M.checker_config ~users:1 ~max_crashes:2 [ [ M.deliver_call 0 "ab" ] ])

(* After a crash, recovery must leave the spool empty (not part of the
   refinement spec — checked directly, as the paper notes this is a
   space-freeing guarantee, not correctness). *)
let test_recovery_cleans_spool () =
  let w = M.init_world ~users:1 () in
  (* run a deliver halfway: create + append, then "crash" *)
  let fs = w.M.fs in
  let fs, fd = Option.get (Gfs.Fs.create fs M.spool "tmp-m0") in
  let fs = Option.get (Gfs.Fs.append fs fd "ab") in
  let crashed = M.crash_world { w with M.fs } in
  let final, v = Sched.Runner.run1 crashed M.recover_prog in
  Alcotest.(check bool) "recovery returns" true (V.equal v V.unit);
  Alcotest.(check (list string)) "spool empty" [] (Gfs.Fs.list_dir final.M.fs M.spool)

(* --- seeded bugs (§9.5) --- *)

let test_bug_unspooled_deliver () =
  (* Without spooling, a crash mid-write leaves a partial message visible. *)
  expect_violation "unspooled deliver"
    (M.checker_config ~users:1 ~max_crashes:1
       [ [ M.Buggy.deliver_call_unspooled 0 "abcd" ] ])

let test_bug_unspooled_deliver_concurrent_pickup () =
  (* Even without crashes, a concurrent pickup can read half a message. *)
  expect_violation "unspooled deliver vs pickup"
    (M.checker_config ~users:1 ~max_crashes:0
       [ [ M.Buggy.deliver_call_unspooled 0 "abcd" ];
         [ M.pickup_call 0; M.unlock_call 0 ] ])

let test_bug_unlocked_pickup () =
  (* Pickup without the user lock races with a delete session. *)
  let w, st = seeded_world_and_state ~users:1 0 "m0" "hi" in
  let spec = { (M.spec ~users:1) with Tslang.Spec.init = st } in
  expect_violation "unlocked pickup"
    (R.config ~spec ~init_world:w ~crash_world:M.crash_world ~pp_world:M.pp_world
       ~threads:
         [ [ M.pickup_call 0; M.delete_call 0 "m0"; M.unlock_call 0 ];
           [ M.Buggy.pickup_call_unlocked 0 ] ]
       ~recovery:M.recover_prog ~max_crashes:0 ())

let test_bug_recover_wrong_dir () =
  (* Recovery that clears mailboxes destroys delivered mail. *)
  expect_violation "recovery deletes mailboxes"
    (R.config ~spec:(M.spec ~users:1) ~init_world:(M.init_world ~users:1 ())
       ~crash_world:M.crash_world ~pp_world:M.pp_world
       ~threads:[ [ M.deliver_call 0 "ab" ] ]
       ~recovery:(M.Buggy.recover_wrong_dir ~users:1)
       ~post:[ M.pickup_call 0; M.unlock_call 0 ]
       ~max_crashes:1 ())

let test_bug_pickup_infinite_loop () =
  (* The paper's >512-byte bug: direct execution exceeds any step budget
     once a message spans more than one chunk. *)
  let w, _ = seeded_world_and_state ~users:1 0 "m0" "abcdef" in
  match Sched.Runner.run ~max_steps:5_000 w [ M.Buggy.pickup_infinite_loop 0 ] with
  | exception Failure msg ->
    Alcotest.(check bool) "diverges" true
      (Astring_contains.contains msg "step budget")
  | _ -> Alcotest.fail "infinite pickup loop terminated?"

let test_ok_pickup_long_message () =
  (* The fixed pickup handles multi-chunk messages. *)
  let w, _ = seeded_world_and_state ~users:1 0 "m0" "abcdef" in
  let _, v = Sched.Runner.run1 w (M.pickup_prog 0) in
  match V.get_list v with
  | [ one ] ->
    let id, contents = V.get_pair one in
    Alcotest.(check string) "id" "m0" (V.get_str id);
    Alcotest.(check string) "contents" "abcdef" (V.get_str contents)
  | _ -> Alcotest.fail "expected exactly one message"

let suite =
  [
    Alcotest.test_case "deliver with crash" `Quick test_deliver_crash;
    Alcotest.test_case "deliver || pickup" `Quick test_deliver_pickup_concurrent;
    Alcotest.test_case "deliver || deliver" `Quick test_two_delivers_same_user;
    Alcotest.test_case "pickup/delete session" `Quick test_pickup_delete_session;
    Alcotest.test_case "delete || deliver" `Quick test_delete_vs_deliver;
    Alcotest.test_case "two users isolated" `Quick test_two_users_isolated;
    Alcotest.test_case "crash during recovery" `Quick test_crash_during_recovery;
    Alcotest.test_case "recovery cleans spool" `Quick test_recovery_cleans_spool;
    Alcotest.test_case "bug: unspooled deliver (crash)" `Quick test_bug_unspooled_deliver;
    Alcotest.test_case "bug: unspooled deliver (race)" `Quick test_bug_unspooled_deliver_concurrent_pickup;
    Alcotest.test_case "bug: unlocked pickup" `Quick test_bug_unlocked_pickup;
    Alcotest.test_case "bug: recovery deletes mailboxes" `Quick test_bug_recover_wrong_dir;
    Alcotest.test_case "bug: >1-chunk pickup loops (§9.5)" `Quick test_bug_pickup_infinite_loop;
    Alcotest.test_case "fixed pickup reads long message" `Quick test_ok_pickup_long_message;
  ]
