lib/sched/runner.ml: Array List Printf Prog Random String Tslang
