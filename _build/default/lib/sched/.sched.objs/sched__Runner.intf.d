lib/sched/runner.mli: Prog Tslang
