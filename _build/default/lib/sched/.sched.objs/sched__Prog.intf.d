lib/sched/prog.mli:
