lib/sched/prog.ml: Tslang
