(** Recursive-descent parser for the Goose subset of Go (§6).

    Restrictions match the paper's Goose: no interfaces, no function
    literals, no channels; composite literals only for declared struct
    types and slices. *)

type error = { line : int; message : string }

exception Parse_error of error

val parse_file : string -> Ast.file
(** Parse a whole source file; raises {!Parse_error} or
    {!Lexer.Lex_error}. *)
