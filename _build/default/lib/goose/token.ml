(** Tokens of the Goose subset of Go (§6). *)

type t =
  (* literals and names *)
  | IDENT of string
  | INT of int
  | STRING of string
  (* keywords *)
  | PACKAGE | IMPORT | FUNC | TYPE | STRUCT | VAR | CONST
  | IF | ELSE | FOR | RANGE | RETURN | GO | BREAK | CONTINUE
  | TRUE | FALSE | NIL
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT
  (* operators *)
  | ASSIGN  (** = *)
  | DEFINE  (** := *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LT | GT | LE | GE
  | ANDAND | OROR | NOT
  | AMP  (** & *)
  | PLUSEQ  (** += *)
  | EOF

let pp ppf = function
  | IDENT s -> Fmt.pf ppf "ident(%s)" s
  | INT n -> Fmt.pf ppf "int(%d)" n
  | STRING s -> Fmt.pf ppf "string(%S)" s
  | PACKAGE -> Fmt.string ppf "package"
  | IMPORT -> Fmt.string ppf "import"
  | FUNC -> Fmt.string ppf "func"
  | TYPE -> Fmt.string ppf "type"
  | STRUCT -> Fmt.string ppf "struct"
  | VAR -> Fmt.string ppf "var"
  | CONST -> Fmt.string ppf "const"
  | IF -> Fmt.string ppf "if"
  | ELSE -> Fmt.string ppf "else"
  | FOR -> Fmt.string ppf "for"
  | RANGE -> Fmt.string ppf "range"
  | RETURN -> Fmt.string ppf "return"
  | GO -> Fmt.string ppf "go"
  | BREAK -> Fmt.string ppf "break"
  | CONTINUE -> Fmt.string ppf "continue"
  | TRUE -> Fmt.string ppf "true"
  | FALSE -> Fmt.string ppf "false"
  | NIL -> Fmt.string ppf "nil"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | COMMA -> Fmt.string ppf ","
  | SEMI -> Fmt.string ppf ";"
  | COLON -> Fmt.string ppf ":"
  | DOT -> Fmt.string ppf "."
  | ASSIGN -> Fmt.string ppf "="
  | DEFINE -> Fmt.string ppf ":="
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | PERCENT -> Fmt.string ppf "%%"
  | EQ -> Fmt.string ppf "=="
  | NE -> Fmt.string ppf "!="
  | LT -> Fmt.string ppf "<"
  | GT -> Fmt.string ppf ">"
  | LE -> Fmt.string ppf "<="
  | GE -> Fmt.string ppf ">="
  | ANDAND -> Fmt.string ppf "&&"
  | OROR -> Fmt.string ppf "||"
  | NOT -> Fmt.string ppf "!"
  | AMP -> Fmt.string ppf "&"
  | PLUSEQ -> Fmt.string ppf "+="
  | EOF -> Fmt.string ppf "<eof>"

let keyword_of_string = function
  | "package" -> Some PACKAGE
  | "import" -> Some IMPORT
  | "func" -> Some FUNC
  | "type" -> Some TYPE
  | "struct" -> Some STRUCT
  | "var" -> Some VAR
  | "const" -> Some CONST
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "for" -> Some FOR
  | "range" -> Some RANGE
  | "return" -> Some RETURN
  | "go" -> Some GO
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "nil" -> Some NIL
  | _ -> None
