(** Runtime values and heap cells of the Goose semantics (§6.1).

    Strings and numbers are immutable values; slices, byte slices, maps and
    pointer cells live on the heap behind references — each access is an
    atomic step, which is what makes data races observable.  Structs are
    values (Go copies them); [&x] boxes one into a heap cell. *)

type t =
  | VUnit
  | VInt of int
  | VBool of bool
  | VString of string
  | VStruct of (string * t) list
  | VRef of int  (** reference to a heap cell *)
  | VTuple of t list  (** multiple return values, transient *)

type cell =
  | CSlice of t list
  | CBytes of string
  | CMap of (t * t) list  (** sorted by key *)
  | CCell of t  (** target of an explicit pointer *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val compare_cell : cell -> cell -> int
val pp_cell : cell Fmt.t

val to_value : (int -> cell option) -> t -> Tslang.Value.t
(** Deep conversion to a universal value, dereferencing through a heap
    snapshot — used at operation boundaries. *)
