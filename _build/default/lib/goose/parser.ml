(** Recursive-descent parser for the Goose subset of Go.

    Follows Go's grammar closely for the constructs in the subset; notable
    restrictions (matching the paper's Goose): no interfaces, no function
    literals, no channels, no select, and composite literals only for
    declared struct types and slices. *)

type error = { line : int; message : string }

exception Parse_error of error

let error line fmt = Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

type state = { mutable toks : Lexer.lexed list }

let peek st = match st.toks with [] -> Token.EOF | { token; _ } :: _ -> token

let peek2 st =
  match st.toks with _ :: { token; _ } :: _ -> token | _ -> Token.EOF

let line st = match st.toks with [] -> 0 | { line; _ } :: _ -> line

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else error (line st) "expected %a, found %a" Token.pp tok Token.pp (peek st)

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> error (line st) "expected identifier, found %a" Token.pp t

let skip_semis st =
  while peek st = Token.SEMI do
    advance st
  done

(* --- types --- *)

let rec parse_type st : Ast.typ =
  match peek st with
  | Token.IDENT "uint64" -> advance st; Ast.Tuint64
  | Token.IDENT "bool" -> advance st; Ast.Tbool
  | Token.IDENT "string" -> advance st; Ast.Tstring
  | Token.IDENT "byte" -> advance st; Ast.Tbyte
  | Token.IDENT "map" ->
    advance st;
    expect st Token.LBRACKET;
    let k = parse_type st in
    expect st Token.RBRACKET;
    let v = parse_type st in
    Ast.Tmap (k, v)
  | Token.IDENT name -> advance st; Ast.Tnamed name
  | Token.LBRACKET ->
    advance st;
    expect st Token.RBRACKET;
    Ast.Tslice (parse_type st)
  | Token.STAR -> advance st; Ast.Tptr (parse_type st)
  | Token.LPAREN ->
    advance st;
    expect st Token.RPAREN;
    Ast.Tunit
  | t -> error (line st) "expected type, found %a" Token.pp t

(* --- expressions --- *)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Token.OROR then begin
    advance st;
    Ast.Binop (Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = Token.ANDAND then begin
    advance st;
    Ast.Binop (Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.GT -> Some Ast.Gt
    | Token.LE -> Some Ast.Le
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Token.MINUS ->
      advance st;
      go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Token.PERCENT ->
      advance st;
      go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.NOT ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | Token.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Token.AMP ->
    advance st;
    Ast.Addr_of (parse_unary st)
  | Token.STAR ->
    advance st;
    Ast.Deref (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Token.DOT ->
      advance st;
      let field = expect_ident st in
      (* qualified call like filesys.Create(...) *)
      if peek st = Token.LPAREN then
        match e with
        | Ast.Ident pkg ->
          advance st;
          let args = parse_args st in
          go (Ast.Call ([ pkg; field ], args))
        | _ -> error (line st) "method calls are not in the Goose subset"
      else go (Ast.Field (e, field))
    | Token.LBRACKET ->
      advance st;
      (* index or slice expression *)
      let lo = if peek st = Token.COLON then None else Some (parse_expr st) in
      if peek st = Token.COLON then begin
        advance st;
        let hi = if peek st = Token.RBRACKET then None else Some (parse_expr st) in
        expect st Token.RBRACKET;
        go (Ast.Sub_slice (e, lo, hi))
      end
      else begin
        expect st Token.RBRACKET;
        match lo with
        | Some ix -> go (Ast.Index (e, ix))
        | None -> error (line st) "empty index"
      end
    | Token.LPAREN -> (
      match e with
      | Ast.Ident name ->
        advance st;
        let args = parse_args st in
        go (builtin_call st name args)
      | _ -> error (line st) "only named functions can be called"
    )
    | _ -> e
  in
  go (parse_primary st)

and builtin_call st name args =
  match name, args with
  | "len", [ e ] -> Ast.Len e
  | "len", _ -> error (line st) "len takes one argument"
  | "append", s :: rest when rest <> [] -> Ast.Append (s, rest)
  | "append", _ -> error (line st) "append needs a slice and elements"
  | "uint64", [ e ] -> Ast.Conv (Ast.Tuint64, e)
  | "string", [ e ] -> Ast.Conv (Ast.Tstring, e)
  | "byte", [ e ] -> Ast.Conv (Ast.Tbyte, e)
  | _ -> Ast.Call ([ name ], args)

and parse_args st =
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let e = parse_expr st in
      match peek st with
      | Token.COMMA ->
        advance st;
        go (e :: acc)
      | Token.RPAREN ->
        advance st;
        List.rev (e :: acc)
      | t -> error (line st) "expected , or ) in arguments, found %a" Token.pp t
    in
    go []

and parse_primary st =
  match peek st with
  | Token.INT n ->
    advance st;
    Ast.Int_lit n
  | Token.STRING s ->
    advance st;
    Ast.Str_lit s
  | Token.TRUE ->
    advance st;
    Ast.Bool_lit true
  | Token.FALSE ->
    advance st;
    Ast.Bool_lit false
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.LBRACKET ->
    (* slice literal []T{...} or conversion []byte(s) *)
    advance st;
    expect st Token.RBRACKET;
    let t = parse_type st in
    (match peek st with
    | Token.LBRACE ->
      advance st;
      let rec go acc =
        if peek st = Token.RBRACE then begin
          advance st;
          List.rev acc
        end
        else
          let e = parse_expr st in
          (match peek st with
          | Token.COMMA -> advance st
          | Token.RBRACE -> ()
          | t -> error (line st) "expected , or } in slice literal, found %a" Token.pp t);
          go (e :: acc)
      in
      Ast.Slice_lit (t, go [])
    | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Ast.Conv (Ast.Tslice t, e)
    | t -> error (line st) "expected {...} or (...) after slice type, found %a" Token.pp t)
  | Token.IDENT "make" ->
    advance st;
    expect st Token.LPAREN;
    let t = parse_type st in
    (match t, peek st with
    | Ast.Tmap (k, v), Token.RPAREN ->
      advance st;
      Ast.Make_map (k, v)
    | Ast.Tslice elt, Token.COMMA ->
      advance st;
      let n = parse_expr st in
      expect st Token.RPAREN;
      Ast.Make_slice (elt, n)
    | _ -> error (line st) "unsupported make(...)")
  | Token.IDENT name -> (
    advance st;
    (* struct literal Name{f: e, ...} — only when immediately followed by
       an opening brace and a field list; flagged by the caller context.
       We use the simple heuristic: IDENT '{' IDENT ':' starts a literal. *)
    match peek st, peek2 st with
    | Token.LBRACE, Token.IDENT _ when peek_field_colon st ->
      advance st;
      let rec go acc =
        if peek st = Token.RBRACE then begin
          advance st;
          List.rev acc
        end
        else begin
          let f = expect_ident st in
          expect st Token.COLON;
          let e = parse_expr st in
          (match peek st with
          | Token.COMMA -> advance st
          | Token.RBRACE -> ()
          | t -> error (line st) "expected , or } in struct literal, found %a" Token.pp t);
          go ((f, e) :: acc)
        end
      in
      Ast.Struct_lit (name, go [])
    | _ -> Ast.Ident name)
  | t -> error (line st) "expected expression, found %a" Token.pp t

and peek_field_colon st =
  match st.toks with
  | _ :: _ :: { token = Token.COLON; _ } :: _ -> true
  | _ -> false

(* --- statements --- *)

let expr_to_lvalue st = function
  | Ast.Ident "_" -> Ast.Lwild
  | Ast.Ident x -> Ast.Lident x
  | Ast.Index (e, i) -> Ast.Lindex (e, i)
  | Ast.Field (e, f) -> Ast.Lfield (e, f)
  | Ast.Deref e -> Ast.Lderef e
  | _ -> error (line st) "not assignable"

let rec parse_block st : Ast.block =
  expect st Token.LBRACE;
  let rec go acc =
    skip_semis st;
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else
      let s = parse_stmt st in
      go (s :: acc)
  in
  go []

and parse_simple_stmt st : Ast.stmt =
  let first = parse_expr st in
  match peek st with
  | Token.DEFINE ->
    advance st;
    let rhs = parse_expr st in
    let names =
      match first with
      | Ast.Ident x -> [ x ]
      | _ -> error (line st) "bad := target"
    in
    Ast.Define (names, rhs)
  | Token.ASSIGN ->
    advance st;
    let rhs = parse_expr st in
    Ast.Assign ([ expr_to_lvalue st first ], rhs)
  | Token.PLUSEQ ->
    advance st;
    let rhs = parse_expr st in
    let lv = expr_to_lvalue st first in
    Ast.Assign ([ lv ], Ast.Binop (Ast.Add, first, rhs))
  | Token.COMMA ->
    (* multi-target define/assign: a, b := e  |  a, b = e *)
    advance st;
    let second = parse_expr st in
    let rec more acc =
      if peek st = Token.COMMA then begin
        advance st;
        more (parse_expr st :: acc)
      end
      else List.rev acc
    in
    let targets = first :: second :: more [] in
    (match peek st with
    | Token.DEFINE ->
      advance st;
      let rhs = parse_expr st in
      let names =
        List.map
          (function
            | Ast.Ident x -> x
            | _ -> error (line st) "bad := target")
          targets
      in
      (* v, ok := m[k] becomes an explicit two-result lookup *)
      let rhs =
        match rhs, names with
        | Ast.Index (m, k), [ _; _ ] -> Ast.Map_lookup2 (m, k)
        | _ -> rhs
      in
      Ast.Define (names, rhs)
    | Token.ASSIGN ->
      advance st;
      let rhs = parse_expr st in
      let rhs =
        match rhs, targets with
        | Ast.Index (m, k), [ _; _ ] -> Ast.Map_lookup2 (m, k)
        | _ -> rhs
      in
      Ast.Assign (List.map (expr_to_lvalue st) targets, rhs)
    | t -> error (line st) "expected := or = after targets, found %a" Token.pp t)
  | _ -> Ast.Expr_stmt first

and parse_stmt st : Ast.stmt =
  match peek st with
  | Token.VAR ->
    advance st;
    let name = expect_ident st in
    if peek st = Token.ASSIGN then begin
      advance st;
      let e = parse_expr st in
      Ast.Var_decl (name, None, Some e)
    end
    else begin
      let t = parse_type st in
      if peek st = Token.ASSIGN then begin
        advance st;
        let e = parse_expr st in
        Ast.Var_decl (name, Some t, Some e)
      end
      else Ast.Var_decl (name, Some t, None)
    end
  | Token.IF -> parse_if st
  | Token.FOR -> parse_for st
  | Token.RETURN ->
    advance st;
    if peek st = Token.SEMI || peek st = Token.RBRACE then Ast.Return []
    else
      let rec go acc =
        let e = parse_expr st in
        if peek st = Token.COMMA then begin
          advance st;
          go (e :: acc)
        end
        else List.rev (e :: acc)
      in
      Ast.Return (go [])
  | Token.GO ->
    advance st;
    Ast.Go_stmt (parse_expr st)
  | Token.BREAK ->
    advance st;
    Ast.Break
  | Token.CONTINUE ->
    advance st;
    Ast.Continue
  | Token.LBRACE -> Ast.Block (parse_block st)
  | _ -> parse_simple_stmt st

and parse_if st : Ast.stmt =
  expect st Token.IF;
  let cond = parse_expr st in
  let then_ = parse_block st in
  let else_ =
    if peek st = Token.ELSE then begin
      advance st;
      if peek st = Token.IF then [ parse_if st ] else parse_block st
    end
    else []
  in
  Ast.If (cond, then_, else_)

and parse_for st : Ast.stmt =
  expect st Token.FOR;
  match peek st with
  | Token.LBRACE ->
    (* for { ... } : infinite loop *)
    Ast.For (None, None, None, parse_block st)
  | Token.IDENT _ when peek2 st = Token.COMMA || (peek2 st = Token.DEFINE && range_follows st) ->
    (* for k, v := range e  |  for x := range e *)
    let k = expect_ident st in
    let v =
      if peek st = Token.COMMA then begin
        advance st;
        expect_ident st
      end
      else "_"
    in
    expect st Token.DEFINE;
    expect st Token.RANGE;
    let e = parse_expr st in
    Ast.For_range (k, v, e, parse_block st)
  | _ ->
    (* for init; cond; post { } or for cond { } *)
    let first =
      if peek st = Token.SEMI then None else Some (parse_simple_stmt st)
    in
    if peek st = Token.SEMI then begin
      advance st;
      let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      let post = if peek st = Token.LBRACE then None else Some (parse_simple_stmt st) in
      Ast.For (first, cond, post, parse_block st)
    end
    else
      (* while-style: the "init" was actually the condition expression *)
      match first with
      | Some (Ast.Expr_stmt cond) -> Ast.For (None, Some cond, None, parse_block st)
      | _ -> error (line st) "malformed for header"

and range_follows st =
  match st.toks with
  | _ :: _ :: { token = Token.RANGE; _ } :: _ -> true
  | _ -> false

(* --- top level --- *)

let parse_params st : (string * Ast.typ) list =
  expect st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let name = expect_ident st in
      let t = parse_type st in
      if peek st = Token.COMMA then begin
        advance st;
        go ((name, t) :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev ((name, t) :: acc)
      end
    in
    go []

let parse_results st : Ast.typ list =
  match peek st with
  | Token.LBRACE -> []
  | Token.LPAREN ->
    advance st;
    let rec go acc =
      let t = parse_type st in
      if peek st = Token.COMMA then begin
        advance st;
        go (t :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (t :: acc)
      end
    in
    go []
  | _ -> [ parse_type st ]

let parse_file (src : string) : Ast.file =
  let st = { toks = Lexer.tokenize src } in
  skip_semis st;
  expect st Token.PACKAGE;
  let package = expect_ident st in
  skip_semis st;
  let imports = ref [] in
  while peek st = Token.IMPORT do
    advance st;
    (match peek st with
    | Token.STRING s ->
      advance st;
      imports := s :: !imports
    | Token.LPAREN ->
      advance st;
      skip_semis st;
      while peek st <> Token.RPAREN do
        (match peek st with
        | Token.STRING s ->
          advance st;
          imports := s :: !imports
        | t -> error (line st) "expected import path, found %a" Token.pp t);
        skip_semis st
      done;
      advance st
    | t -> error (line st) "expected import path, found %a" Token.pp t);
    skip_semis st
  done;
  let structs = ref [] and funcs = ref [] and consts = ref [] in
  let rec go () =
    skip_semis st;
    match peek st with
    | Token.EOF -> ()
    | Token.TYPE ->
      advance st;
      let sname = expect_ident st in
      expect st Token.STRUCT;
      expect st Token.LBRACE;
      skip_semis st;
      let rec fields acc =
        if peek st = Token.RBRACE then begin
          advance st;
          List.rev acc
        end
        else begin
          let fname = expect_ident st in
          let t = parse_type st in
          skip_semis st;
          fields ((fname, t) :: acc)
        end
      in
      structs := { Ast.sname; sfields = fields [] } :: !structs;
      go ()
    | Token.CONST ->
      advance st;
      let name = expect_ident st in
      (* optional type annotation ignored *)
      if peek st <> Token.ASSIGN then ignore (parse_type st);
      expect st Token.ASSIGN;
      let e = parse_expr st in
      consts := (name, e) :: !consts;
      go ()
    | Token.FUNC ->
      advance st;
      let fname = expect_ident st in
      let params = parse_params st in
      let results = parse_results st in
      let body = parse_block st in
      funcs := { Ast.fname; params; results; body } :: !funcs;
      go ()
    | t -> error (line st) "expected top-level declaration, found %a" Token.pp t
  in
  go ();
  {
    Ast.package;
    imports = List.rev !imports;
    structs = List.rev !structs;
    consts = List.rev !consts;
    funcs = List.rev !funcs;
  }
