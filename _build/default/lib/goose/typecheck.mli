(** A lightweight typechecker for the Goose subset — the role the paper
    assigns to Coq's typechecker on the translated output: rejecting code
    the model does not cover before any reasoning happens.  Checks
    identifier scoping, call arity and argument types (including the
    modeled [filesys]/[machine]/[sync] library), struct fields, operator
    operand types and return arities. *)

exception Type_error of string

val check_file : Ast.file -> unit
(** Raises {!Type_error} on the first problem. *)
