(** Abstract syntax of the Goose subset of Go (§6): slices, maps, structs,
    pointers, goroutines, and calls into the modeled standard library
    ([filesys], [machine], [sync]).  Interfaces and first-class functions
    are outside the subset, exactly as in the paper. *)

type typ =
  | Tuint64
  | Tbool
  | Tstring
  | Tbyte
  | Tslice of typ
  | Tmap of typ * typ
  | Tptr of typ
  | Tnamed of string  (** a declared struct type *)
  | Tunit  (** no results *)
  | Ttuple of typ list  (** multiple results *)

let rec pp_typ ppf = function
  | Tuint64 -> Fmt.string ppf "uint64"
  | Tbool -> Fmt.string ppf "bool"
  | Tstring -> Fmt.string ppf "string"
  | Tbyte -> Fmt.string ppf "byte"
  | Tslice t -> Fmt.pf ppf "[]%a" pp_typ t
  | Tmap (k, v) -> Fmt.pf ppf "map[%a]%a" pp_typ k pp_typ v
  | Tptr t -> Fmt.pf ppf "*%a" pp_typ t
  | Tnamed s -> Fmt.string ppf s
  | Tunit -> Fmt.string ppf "()"
  | Ttuple ts -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:Fmt.comma pp_typ) ts

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Gt | Le | Ge
  | And | Or

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
    | And -> "&&" | Or -> "||")

type unop = Not | Neg

type expr =
  | Int_lit of int
  | Bool_lit of bool
  | Str_lit of string
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string list * expr list
      (** qualified call: [["filesys"; "Create"]] or [["helper"]] *)
  | Index of expr * expr  (** [s[i]] or [m[k]] *)
  | Field of expr * string  (** [x.f] *)
  | Slice_lit of typ * expr list  (** [[]T{e1, ...}] *)
  | Struct_lit of string * (string * expr) list
  | Make_map of typ * typ
  | Make_slice of typ * expr
  | Len of expr
  | Append of expr * expr list  (** [append(s, xs...)] *)
  | Sub_slice of expr * expr option * expr option  (** [s[a:b]] *)
  | Addr_of of expr  (** [&x] *)
  | Deref of expr  (** [*p] *)
  | Conv of typ * expr  (** [[]byte(s)], [string(b)], [uint64(n)] *)
  | Map_lookup2 of expr * expr
      (** the two-result form [v, ok := m[k]]; produced by the parser when a
          lookup appears in a two-target define *)

type lvalue =
  | Lident of string
  | Lindex of expr * expr
  | Lfield of expr * string
  | Lderef of expr
  | Lwild  (** [_] *)

type stmt =
  | Define of string list * expr  (** [x, y := e] *)
  | Assign of lvalue list * expr
  | Var_decl of string * typ option * expr option
  | Expr_stmt of expr
  | If of expr * block * block
  | For of stmt option * expr option * stmt option * block
  | For_range of string * string * expr * block  (** [for k, v := range e] *)
  | Return of expr list
  | Go_stmt of expr  (** [go f(...)] *)
  | Break
  | Continue
  | Block of block

and block = stmt list

type func_decl = {
  fname : string;
  params : (string * typ) list;
  results : typ list;
  body : block;
}

type struct_decl = { sname : string; sfields : (string * typ) list }

type file = {
  package : string;
  imports : string list;
  structs : struct_decl list;
  consts : (string * expr) list;
  funcs : func_decl list;
}

let find_func file name = List.find_opt (fun f -> String.equal f.fname name) file.funcs
let find_struct file name = List.find_opt (fun s -> String.equal s.sname name) file.structs
