(** The Goose semantics: an interpreter from the Go-subset AST into
    atomic-step programs — the "Perennial model" of the code (§6).

    Every heap, lock and file-system access is one atomic step of the
    resulting {!Sched.Prog.t}; pure local computation costs no steps.  In
    race-detection mode (the default, matching §6.1), a heap store is
    {e two} atomic steps — start and end — and any concurrent access to the
    same cell in between is undefined behaviour.  A crash clears the heap
    and the locks and drops file descriptors, while file data persists
    (§6.2). *)

module IMap := Map.Make (Int)

type heap_cell = { content : Gvalue.cell; being_written : bool }

type world = {
  heap : heap_cell IMap.t;
  next_ref : int;
  fs : Gfs.Fs.t;
  disk : Disk.Single_disk.t;  (** for the [disk.*] package; size 0 if unused *)
  tdisk : Disk.Two_disk.t;  (** for the [twodisk.*] package (§1's substrate) *)
  locks : Disk.Locks.t;
}

val init_world :
  ?dirs:string list -> ?disk_size:int -> ?tdisk_size:int -> ?may_fail:bool -> unit -> world
val crash_world : world -> world
val compare_world : world -> world -> int
val pp_world : world Fmt.t

type config = {
  race_detect : bool;  (** model stores as two steps (§6.1) *)
  random_universe : int list;  (** the values RandomUint64 may produce *)
}

val default_config : config
(** Race detection on; random universe [[0; 1]]. *)

exception Goose_error of string
(** Static errors: unsupported constructs, unknown identifiers.  Dynamic
    misbehaviour inside a run is undefined behaviour instead. *)

type t
(** A loaded program: a parsed file plus its interpreter configuration. *)

val make : ?cfg:config -> Ast.file -> t

val run_func : t -> string -> Gvalue.t list -> (world, Gvalue.t) Sched.Prog.t
(** The named function as an atomic-step program. *)

val run_func_value : t -> string -> Gvalue.t list -> (world, Tslang.Value.t) Sched.Prog.t
(** Like {!run_func}, converting the result to a universal value by
    dereferencing through the final heap — the form the refinement checker
    compares against the spec. *)
