(** The Goose translator's output stage (§7): pretty-print a parsed Go file
    as the Coq-flavoured "Perennial model", one [Definition] per function in
    monadic notation — the same human-auditable shape the paper's goose
    tool emits. *)

val to_coq : Ast.file -> string

val translate : string -> (string, string) result
(** The full pipeline on Go source: lex, parse, typecheck, emit.  [Error]
    carries a located message for lex/parse failures or the typechecker's
    reason for rejecting code outside the subset. *)
