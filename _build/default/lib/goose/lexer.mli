(** Hand-written lexer for the Goose subset of Go, including Go's automatic
    semicolon insertion: a newline terminates a statement when the previous
    token could end one (identifier, literal, closer, return/break/continue). *)

type error = { line : int; message : string }

exception Lex_error of error

type lexed = { token : Token.t; line : int }

val tokenize : string -> lexed list
(** Always ends with [EOF]; raises {!Lex_error} on malformed input. *)
