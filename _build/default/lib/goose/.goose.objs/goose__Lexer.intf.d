lib/goose/lexer.mli: Token
