lib/goose/gvalue.mli: Fmt Tslang
