lib/goose/parser.ml: Ast Fmt Lexer List Token
