lib/goose/parser.mli: Ast
