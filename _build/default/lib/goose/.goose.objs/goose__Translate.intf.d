lib/goose/translate.mli: Ast
