lib/goose/token.ml: Fmt
