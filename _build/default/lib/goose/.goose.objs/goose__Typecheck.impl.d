lib/goose/typecheck.ml: Ast Fmt Hashtbl List Map String
