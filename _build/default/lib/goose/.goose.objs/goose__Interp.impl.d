lib/goose/interp.ml: Ast Bool Char Disk Fmt Gfs Gvalue Int List Map Option Printf Sched String Tslang
