lib/goose/ast.ml: Fmt List String
