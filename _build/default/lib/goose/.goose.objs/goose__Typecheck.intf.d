lib/goose/typecheck.mli: Ast
