lib/goose/translate.ml: Ast Buffer Lexer List Parser Printf String Typecheck
