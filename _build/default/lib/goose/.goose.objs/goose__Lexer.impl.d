lib/goose/lexer.ml: Buffer Fmt List String Token
