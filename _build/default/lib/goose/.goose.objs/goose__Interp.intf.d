lib/goose/interp.mli: Ast Disk Fmt Gfs Gvalue Int Map Sched Tslang
