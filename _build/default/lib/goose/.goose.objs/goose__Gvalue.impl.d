lib/goose/gvalue.ml: Bool Fmt Int List Map Printf String Tslang
