(** The Goose translator's output stage: pretty-print the parsed Go file as
    the Coq-flavoured "Perennial model" (§7).

    The real goose tool emits Coq definitions over Perennial's Goose
    semantics; this emitter produces the same human-auditable shape — one
    [Definition] per Go function, in a monadic notation over the modeled
    heap/file-system operations — so that the translation can be reviewed
    the way the paper advocates ("goose produces human-readable output that
    is easy to audit"). *)

open Ast

let buf_add = Buffer.add_string

let rec coq_typ = function
  | Tuint64 -> "uint64"
  | Tbool -> "bool"
  | Tstring -> "string"
  | Tbyte -> "byte"
  | Tslice t -> Printf.sprintf "(slice.t %s)" (coq_typ t)
  | Tmap (k, v) -> Printf.sprintf "(Map %s %s)" (coq_typ k) (coq_typ v)
  | Tptr t -> Printf.sprintf "(ptr %s)" (coq_typ t)
  | Tnamed s -> s ^ ".t"
  | Tunit -> "unit"
  | Ttuple ts -> "(" ^ String.concat " * " (List.map coq_typ ts) ^ ")"

let rec coq_expr = function
  | Int_lit n -> string_of_int n
  | Bool_lit b -> string_of_bool b
  | Str_lit s -> Printf.sprintf "%S" s
  | Ident x -> x
  | Binop (op, a, b) ->
    let op_s =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "mod"
      | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
      | And -> "&&" | Or -> "||"
    in
    Printf.sprintf "(%s %s %s)" (coq_expr a) op_s (coq_expr b)
  | Unop (Not, a) -> Printf.sprintf "(negb %s)" (coq_expr a)
  | Unop (Neg, a) -> Printf.sprintf "(- %s)" (coq_expr a)
  | Call (path, args) ->
    let callee =
      match path with
      | [ "filesys"; f ] -> "FS." ^ String.uncapitalize_ascii f
      | [ "machine"; f ] -> "Data." ^ String.uncapitalize_ascii f
      | [ "sync"; f ] -> "Lock." ^ String.uncapitalize_ascii f
      | parts -> String.concat "." parts
    in
    if args = [] then callee
    else Printf.sprintf "(%s %s)" callee (String.concat " " (List.map coq_expr args))
  | Index (e, i) -> Printf.sprintf "(index %s %s)" (coq_expr e) (coq_expr i)
  | Map_lookup2 (m, k) -> Printf.sprintf "(Map.lookup %s %s)" (coq_expr m) (coq_expr k)
  | Field (e, f) -> Printf.sprintf "%s.(%s)" (coq_expr e) f
  | Slice_lit (t, es) ->
    Printf.sprintf "(slice_of %s [%s])" (coq_typ t) (String.concat "; " (List.map coq_expr es))
  | Struct_lit (name, fields) ->
    Printf.sprintf "{| %s |}"
      (String.concat "; " (List.map (fun (f, e) -> Printf.sprintf "%s.%s := %s" name f (coq_expr e)) fields))
  | Make_map (k, v) -> Printf.sprintf "(Data.newMap %s %s)" (coq_typ k) (coq_typ v)
  | Make_slice (t, n) -> Printf.sprintf "(Data.newSlice %s %s)" (coq_typ t) (coq_expr n)
  | Len e -> Printf.sprintf "(len %s)" (coq_expr e)
  | Append (s, es) ->
    Printf.sprintf "(Data.sliceAppend %s [%s])" (coq_expr s)
      (String.concat "; " (List.map coq_expr es))
  | Sub_slice (s, lo, hi) ->
    Printf.sprintf "(Data.subslice %s %s %s)" (coq_expr s)
      (match lo with Some e -> coq_expr e | None -> "0")
      (match hi with Some e -> coq_expr e | None -> "(len " ^ coq_expr s ^ ")")
  | Addr_of e -> Printf.sprintf "(Data.newPtr %s)" (coq_expr e)
  | Deref e -> Printf.sprintf "(Data.readPtr %s)" (coq_expr e)
  | Conv (t, e) -> Printf.sprintf "(coerce %s %s)" (coq_typ t) (coq_expr e)

let rec emit_block buf indent (b : block) =
  let pad = String.make indent ' ' in
  match b with
  | [] -> buf_add buf (pad ^ "Ret tt")
  | [ s ] -> emit_stmt buf indent s ~last:true
  | s :: rest ->
    emit_stmt buf indent s ~last:false;
    buf_add buf ";;\n";
    emit_block buf indent rest

and emit_stmt buf indent s ~last =
  let pad = String.make indent ' ' in
  match s with
  | Define ([ x ], e) -> buf_add buf (Printf.sprintf "%s%s <- %s" pad x (coq_expr e))
  | Define (xs, e) ->
    buf_add buf (Printf.sprintf "%slet! (%s) <- %s" pad (String.concat ", " xs) (coq_expr e))
  | Var_decl (x, _, Some e) -> buf_add buf (Printf.sprintf "%s%s <- %s" pad x (coq_expr e))
  | Var_decl (x, t, None) ->
    buf_add buf
      (Printf.sprintf "%s%s <- Ret (zero_val %s)" pad x
         (match t with Some t -> coq_typ t | None -> "_"))
  | Assign ([ Lident x ], e) -> buf_add buf (Printf.sprintf "%s%s <- %s" pad x (coq_expr e))
  | Assign (lvs, e) ->
    let lv_s = function
      | Lident x -> x
      | Lwild -> "_"
      | Lindex (s, i) -> Printf.sprintf "(index %s %s)" (coq_expr s) (coq_expr i)
      | Lfield (s, f) -> Printf.sprintf "%s.(%s)" (coq_expr s) f
      | Lderef p -> Printf.sprintf "(deref %s)" (coq_expr p)
    in
    buf_add buf
      (Printf.sprintf "%sData.store (%s) <- %s" pad
         (String.concat ", " (List.map lv_s lvs))
         (coq_expr e))
  | Expr_stmt e ->
    if last then buf_add buf (Printf.sprintf "%s%s" pad (coq_expr e))
    else buf_add buf (Printf.sprintf "%s_ <- %s" pad (coq_expr e))
  | If (c, t, f) ->
    buf_add buf (Printf.sprintf "%sif %s\n%sthen (\n" pad (coq_expr c) pad);
    emit_block buf (indent + 2) t;
    buf_add buf (Printf.sprintf "\n%s) else (\n" pad);
    emit_block buf (indent + 2) f;
    buf_add buf (Printf.sprintf "\n%s)" pad)
  | For (init, cond, post, body) ->
    buf_add buf (Printf.sprintf "%sLoop (" pad);
    (match init with
    | Some s ->
      emit_stmt buf 0 s ~last:false;
      buf_add buf ";; "
    | None -> ());
    (match cond with
    | Some c -> buf_add buf (Printf.sprintf "while %s do\n" (coq_expr c))
    | None -> buf_add buf "while true do\n");
    emit_block buf (indent + 2) body;
    (match post with
    | Some s ->
      buf_add buf ";;\n";
      emit_stmt buf (indent + 2) s ~last:true
    | None -> ());
    buf_add buf (Printf.sprintf "\n%s)" pad)
  | For_range (k, v, e, body) ->
    buf_add buf (Printf.sprintf "%sData.forRange %s (fun %s %s =>\n" pad (coq_expr e) k v);
    emit_block buf (indent + 2) body;
    buf_add buf (Printf.sprintf "\n%s)" pad)
  | Return [] -> buf_add buf (pad ^ "Ret tt")
  | Return [ e ] -> buf_add buf (Printf.sprintf "%sRet %s" pad (coq_expr e))
  | Return es ->
    buf_add buf (Printf.sprintf "%sRet (%s)" pad (String.concat ", " (List.map coq_expr es)))
  | Go_stmt e -> buf_add buf (Printf.sprintf "%sSpawn (%s)" pad (coq_expr e))
  | Break -> buf_add buf (pad ^ "LoopBreak")
  | Continue -> buf_add buf (pad ^ "LoopContinue")
  | Block b ->
    emit_block buf indent b

let emit_struct buf (s : struct_decl) =
  buf_add buf (Printf.sprintf "Module %s.\n  Record t := mk {\n" s.sname);
  List.iter
    (fun (f, t) -> buf_add buf (Printf.sprintf "    %s : %s;\n" f (coq_typ t)))
    s.sfields;
  buf_add buf (Printf.sprintf "  }.\nEnd %s.\n\n" s.sname)

let emit_func buf (f : func_decl) =
  let params =
    String.concat " "
      (List.map (fun (p, t) -> Printf.sprintf "(%s : %s)" p (coq_typ t)) f.params)
  in
  let ret =
    match f.results with
    | [] -> "unit"
    | [ t ] -> coq_typ t
    | ts -> "(" ^ String.concat " * " (List.map coq_typ ts) ^ ")"
  in
  buf_add buf
    (Printf.sprintf "Definition %s %s : proc %s :=\n" f.fname
       (if params = "" then "" else params)
       ret);
  emit_block buf 2 f.body;
  buf_add buf ".\n\n"

(** Translate a parsed Go file into its Perennial model rendering. *)
let to_coq (file : file) : string =
  let buf = Buffer.create 4096 in
  buf_add buf
    (Printf.sprintf
       "(* Autogenerated by goose from package %s — the Perennial model of the Go source. *)\n\
        From Perennial Require Import Goose.\n\n"
       file.package);
  List.iter (emit_struct buf) file.structs;
  List.iter
    (fun (name, e) -> buf_add buf (Printf.sprintf "Definition %s := %s.\n\n" name (coq_expr e)))
    file.consts;
  List.iter (emit_func buf) file.funcs;
  Buffer.contents buf

(** The full translator pipeline: lex, parse, typecheck, emit.  Mirrors the
    goose executable (§7). *)
let translate (src : string) : (string, string) result =
  match Parser.parse_file src with
  | exception Lexer.Lex_error { line; message } ->
    Error (Printf.sprintf "lex error at line %d: %s" line message)
  | exception Parser.Parse_error { line; message } ->
    Error (Printf.sprintf "parse error at line %d: %s" line message)
  | file -> (
    match Typecheck.check_file file with
    | exception Typecheck.Type_error msg -> Error (Printf.sprintf "type error: %s" msg)
    | () -> Ok (to_coq file))
