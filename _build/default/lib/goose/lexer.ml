(** Hand-written lexer for the Goose subset of Go, including Go's automatic
    semicolon insertion: a newline terminates a statement when the previous
    token could end one (identifier, literal, closer, return/break/continue). *)

type error = { line : int; message : string }

exception Lex_error of error

let error line fmt = Fmt.kstr (fun message -> raise (Lex_error { line; message })) fmt

type lexed = { token : Token.t; line : int }

let ends_statement = function
  | Token.IDENT _ | Token.INT _ | Token.STRING _ | Token.TRUE | Token.FALSE | Token.NIL
  | Token.RPAREN | Token.RBRACE | Token.RBRACKET | Token.RETURN | Token.BREAK
  | Token.CONTINUE ->
    true
  | _ -> false

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit tok = tokens := { token = tok; line = !line } :: !tokens in
  let last_token () = match !tokens with [] -> None | { token; _ } :: _ -> Some token in
  let maybe_semi () =
    match last_token () with
    | Some t when ends_statement t -> emit Token.SEMI
    | _ -> ()
  in
  let rec go i =
    if i >= n then begin
      maybe_semi ();
      emit Token.EOF
    end
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        maybe_semi ();
        incr line;
        go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then error !line "unterminated block comment"
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then incr line;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then error !line "unterminated string literal"
          else
            match src.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
              let e =
                match src.[j + 1] with
                | 'n' -> '\n'
                | 't' -> '\t'
                | 'r' -> '\r'
                | '\\' -> '\\'
                | '"' -> '"'
                | c -> error !line "unknown escape \\%c" c
              in
              Buffer.add_char buf e;
              str (j + 2)
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        let j = str (i + 1) in
        emit (Token.STRING (Buffer.contents buf));
        go j
      | c when is_digit c ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num i in
        emit (Token.INT (int_of_string (String.sub src i (j - i))));
        go j
      | c when is_ident_start c ->
        let rec ident j = if j < n && is_ident_char src.[j] then ident (j + 1) else j in
        let j = ident i in
        let word = String.sub src i (j - i) in
        (match Token.keyword_of_string word with
        | Some kw -> emit kw
        | None -> emit (Token.IDENT word));
        go j
      | ':' when i + 1 < n && src.[i + 1] = '=' ->
        emit Token.DEFINE;
        go (i + 2)
      | '=' when i + 1 < n && src.[i + 1] = '=' ->
        emit Token.EQ;
        go (i + 2)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
        emit Token.NE;
        go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' ->
        emit Token.LE;
        go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
        emit Token.GE;
        go (i + 2)
      | '&' when i + 1 < n && src.[i + 1] = '&' ->
        emit Token.ANDAND;
        go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' ->
        emit Token.OROR;
        go (i + 2)
      | '+' when i + 1 < n && src.[i + 1] = '=' ->
        emit Token.PLUSEQ;
        go (i + 2)
      | '(' -> emit Token.LPAREN; go (i + 1)
      | ')' -> emit Token.RPAREN; go (i + 1)
      | '{' -> emit Token.LBRACE; go (i + 1)
      | '}' -> emit Token.RBRACE; go (i + 1)
      | '[' -> emit Token.LBRACKET; go (i + 1)
      | ']' -> emit Token.RBRACKET; go (i + 1)
      | ',' -> emit Token.COMMA; go (i + 1)
      | ';' -> emit Token.SEMI; go (i + 1)
      | ':' -> emit Token.COLON; go (i + 1)
      | '.' -> emit Token.DOT; go (i + 1)
      | '=' -> emit Token.ASSIGN; go (i + 1)
      | '+' -> emit Token.PLUS; go (i + 1)
      | '-' -> emit Token.MINUS; go (i + 1)
      | '*' -> emit Token.STAR; go (i + 1)
      | '/' -> emit Token.SLASH; go (i + 1)
      | '%' -> emit Token.PERCENT; go (i + 1)
      | '<' -> emit Token.LT; go (i + 1)
      | '>' -> emit Token.GT; go (i + 1)
      | '!' -> emit Token.NOT; go (i + 1)
      | '&' -> emit Token.AMP; go (i + 1)
      | c -> error !line "unexpected character %C" c
  in
  go 0;
  List.rev !tokens
