(** Runtime values and heap cells of the Goose semantics (§6.1).

    Strings and numbers are immutable values; slices, byte slices, maps and
    pointer cells live on the heap and are accessed through references —
    each access is an atomic step, which is what makes data races observable
    to the checker.  Structs are values (Go copies them); [&x] boxes one
    into a heap cell. *)

module V = Tslang.Value
module IMap = Map.Make (Int)

type t =
  | VUnit
  | VInt of int
  | VBool of bool
  | VString of string
  | VStruct of (string * t) list
  | VRef of int  (** reference to a heap cell *)
  | VTuple of t list  (** multiple return values, transient *)

type cell =
  | CSlice of t list
  | CBytes of string
  | CMap of (t * t) list  (** sorted by key *)
  | CCell of t  (** target of an explicit pointer *)

let rec compare a b =
  let tag = function
    | VUnit -> 0 | VInt _ -> 1 | VBool _ -> 2 | VString _ -> 3 | VStruct _ -> 4
    | VRef _ -> 5 | VTuple _ -> 6
  in
  match a, b with
  | VUnit, VUnit -> 0
  | VInt x, VInt y -> Int.compare x y
  | VBool x, VBool y -> Bool.compare x y
  | VString x, VString y -> String.compare x y
  | VStruct xs, VStruct ys ->
    List.compare (fun (f1, v1) (f2, v2) ->
        let c = String.compare f1 f2 in
        if c <> 0 then c else compare v1 v2)
      xs ys
  | VRef x, VRef y -> Int.compare x y
  | VTuple xs, VTuple ys -> List.compare compare xs ys
  | _, _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let rec pp ppf = function
  | VUnit -> Fmt.string ppf "()"
  | VInt n -> Fmt.int ppf n
  | VBool b -> Fmt.bool ppf b
  | VString s -> Fmt.pf ppf "%S" s
  | VStruct fields ->
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:Fmt.comma (fun ppf (f, v) -> Fmt.pf ppf "%s: %a" f pp v))
      fields
  | VRef r -> Fmt.pf ppf "&%d" r
  | VTuple vs -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:Fmt.comma pp) vs

let compare_cell a b =
  match a, b with
  | CSlice xs, CSlice ys -> List.compare compare xs ys
  | CBytes x, CBytes y -> String.compare x y
  | CMap xs, CMap ys ->
    List.compare (fun (k1, v1) (k2, v2) ->
        let c = compare k1 k2 in
        if c <> 0 then c else compare v1 v2)
      xs ys
  | CCell x, CCell y -> compare x y
  | CSlice _, _ -> -1
  | _, CSlice _ -> 1
  | CBytes _, _ -> -1
  | _, CBytes _ -> 1
  | CMap _, _ -> -1
  | _, CMap _ -> 1

let pp_cell ppf = function
  | CSlice vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.semi pp) vs
  | CBytes s -> Fmt.pf ppf "bytes %S" s
  | CMap kvs ->
    Fmt.pf ppf "map{%a}"
      (Fmt.list ~sep:Fmt.comma (fun ppf (k, v) -> Fmt.pf ppf "%a: %a" pp k pp v))
      kvs
  | CCell v -> Fmt.pf ppf "cell %a" pp v

(** Deep conversion to a universal {!Tslang.Value.t}, dereferencing through
    a heap snapshot — used at operation boundaries (return values the
    refinement checker compares). *)
let rec to_value lookup = function
  | VUnit -> V.unit
  | VInt n -> V.int n
  | VBool b -> V.bool b
  | VString s -> V.str s
  | VStruct fields -> V.list (List.map (fun (f, v) -> V.pair (V.str f) (to_value lookup v)) fields)
  | VTuple vs -> V.list (List.map (to_value lookup) vs)
  | VRef r -> (
    match lookup r with
    | Some (CSlice vs) -> V.list (List.map (to_value lookup) vs)
    | Some (CBytes s) -> V.str s
    | Some (CMap kvs) ->
      V.list (List.map (fun (k, v) -> V.pair (to_value lookup k) (to_value lookup v)) kvs)
    | Some (CCell v) -> to_value lookup v
    | None -> V.str (Printf.sprintf "<dangling ref %d>" r))
