(** A lightweight typechecker for the Goose subset.

    Plays the role the paper assigns to Coq's typechecker on the translated
    output: rejecting code the model does not cover before any reasoning
    happens.  Checks identifier scoping, call arity and argument types for
    the modeled standard library, struct fields, operator operand types and
    return arities. *)

module SMap = Map.Make (String)
open Ast

exception Type_error of string

let failf fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let rec equal_typ a b =
  match a, b with
  | Tuint64, Tuint64 | Tbool, Tbool | Tstring, Tstring | Tbyte, Tbyte | Tunit, Tunit -> true
  (* bytes index as uint64 in this model *)
  | Tuint64, Tbyte | Tbyte, Tuint64 -> true
  | Tslice x, Tslice y -> equal_typ x y
  | Tmap (k1, v1), Tmap (k2, v2) -> equal_typ k1 k2 && equal_typ v1 v2
  | Tptr x, Tptr y -> equal_typ x y
  | Tnamed x, Tnamed y -> String.equal x y
  | Ttuple xs, Ttuple ys -> List.length xs = List.length ys && List.for_all2 equal_typ xs ys
  | _, _ -> false

type ctx = {
  file : file;
  vars : typ SMap.t;
  results : typ list;  (** of the enclosing function *)
  in_loop : bool;
}

let stdlib_sigs : (string * (typ list * typ list)) list =
  [
    ("filesys.Create", ([ Tstring; Tstring ], [ Tuint64; Tbool ]));
    ("filesys.Open", ([ Tstring; Tstring ], [ Tuint64; Tbool ]));
    ("filesys.Append", ([ Tuint64; Tslice Tbyte ], []));
    ("filesys.Close", ([ Tuint64 ], []));
    ("filesys.Fsync", ([ Tuint64 ], []));
    ("filesys.ReadAt", ([ Tuint64; Tuint64; Tuint64 ], [ Tslice Tbyte ]));
    ("filesys.Size", ([ Tuint64 ], [ Tuint64 ]));
    ("filesys.Link", ([ Tstring; Tstring; Tstring; Tstring ], [ Tbool ]));
    ("filesys.Delete", ([ Tstring; Tstring ], [ Tbool ]));
    ("filesys.List", ([ Tstring ], [ Tslice Tstring ]));
    ("disk.Read", ([ Tuint64 ], [ Tslice Tbyte ]));
    ("disk.Write", ([ Tuint64; Tslice Tbyte ], []));
    ("disk.Size", ([], [ Tuint64 ]));
    ("twodisk.Read", ([ Tuint64; Tuint64 ], [ Tslice Tbyte; Tbool ]));
    ("twodisk.Write", ([ Tuint64; Tuint64; Tslice Tbyte ], []));
    ("twodisk.Size", ([], [ Tuint64 ]));
    ("machine.RandomUint64", ([], [ Tuint64 ]));
    ("machine.UInt64ToString", ([ Tuint64 ], [ Tstring ]));
    ("sync.Lock", ([ Tuint64 ], []));
    ("sync.Unlock", ([ Tuint64 ], []));
  ]

let results_to_typ = function
  | [] -> Tunit
  | [ t ] -> t
  | ts -> Ttuple ts

let struct_fields ctx name =
  match find_struct ctx.file name with
  | Some d -> d.sfields
  | None -> failf "unknown struct type %s" name

let rec infer ctx (e : expr) : typ =
  match e with
  | Int_lit _ -> Tuint64
  | Bool_lit _ -> Tbool
  | Str_lit _ -> Tstring
  | Ident x -> (
    match SMap.find_opt x ctx.vars with
    | Some t -> t
    | None -> (
      match List.assoc_opt x ctx.file.consts with
      | Some ce -> infer ctx ce
      | None -> failf "unbound identifier %s" x))
  | Binop (op, a, b) -> (
    let ta = infer ctx a and tb = infer ctx b in
    if not (equal_typ ta tb) then
      failf "operands of %a have different types (%a vs %a)" pp_binop op pp_typ ta pp_typ tb;
    match op with
    | Add -> (
      match ta with
      | Tuint64 | Tbyte | Tstring -> ta
      | _ -> failf "+ needs numbers or strings")
    | Sub | Mul | Div | Mod ->
      if equal_typ ta Tuint64 then Tuint64 else failf "arithmetic needs uint64"
    | Eq | Ne -> Tbool
    | Lt | Gt | Le | Ge -> (
      match ta with
      | Tuint64 | Tbyte | Tstring -> Tbool
      | _ -> failf "comparison needs ordered operands")
    | And | Or -> if equal_typ ta Tbool then Tbool else failf "&&/|| need booleans")
  | Unop (Not, a) ->
    if equal_typ (infer ctx a) Tbool then Tbool else failf "! needs bool"
  | Unop (Neg, a) ->
    if equal_typ (infer ctx a) Tuint64 then Tuint64 else failf "unary - needs uint64"
  | Call (path, args) -> infer_call ctx path args
  | Index (e1, e2) -> (
    let t1 = infer ctx e1 in
    match t1 with
    | Tslice t ->
      if equal_typ (infer ctx e2) Tuint64 then t else failf "slice index must be uint64"
    | Tstring ->
      if equal_typ (infer ctx e2) Tuint64 then Tbyte else failf "string index must be uint64"
    | Tmap (k, v) ->
      if equal_typ (infer ctx e2) k then v else failf "map key type mismatch"
    | t -> failf "cannot index a %a" pp_typ t)
  | Map_lookup2 (me, ke) -> (
    match infer ctx me with
    | Tmap (k, v) ->
      if equal_typ (infer ctx ke) k then Ttuple [ v; Tbool ]
      else failf "map key type mismatch"
    | t -> failf "two-result lookup on %a" pp_typ t)
  | Field (e1, f) -> (
    match infer ctx e1 with
    | Tnamed name | Tptr (Tnamed name) -> (
      match List.assoc_opt f (struct_fields ctx name) with
      | Some t -> t
      | None -> failf "struct %s has no field %s" name f)
    | t -> failf "field access on %a" pp_typ t)
  | Slice_lit (t, elems) ->
    List.iter
      (fun e ->
        let te = infer ctx e in
        if not (equal_typ te t) then
          failf "slice literal element has type %a, expected %a" pp_typ te pp_typ t)
      elems;
    Tslice t
  | Struct_lit (name, fields) ->
    let decl = struct_fields ctx name in
    List.iter
      (fun (f, e) ->
        match List.assoc_opt f decl with
        | Some t ->
          let te = infer ctx e in
          if not (equal_typ te t) then
            failf "field %s of %s has type %a, given %a" f name pp_typ t pp_typ te
        | None -> failf "struct %s has no field %s" name f)
      fields;
    Tnamed name
  | Make_map (k, v) -> Tmap (k, v)
  | Make_slice (t, n) ->
    if equal_typ (infer ctx n) Tuint64 then Tslice t else failf "make length must be uint64"
  | Len e1 -> (
    match infer ctx e1 with
    | Tslice _ | Tstring | Tmap _ -> Tuint64
    | t -> failf "len of %a" pp_typ t)
  | Append (s, elems) -> (
    match infer ctx s with
    | Tslice t ->
      List.iter
        (fun e ->
          if not (equal_typ (infer ctx e) t) then failf "append element type mismatch")
        elems;
      Tslice t
    | t -> failf "append to %a" pp_typ t)
  | Sub_slice (s, lo, hi) -> (
    let check_ix = function
      | Some e ->
        if not (equal_typ (infer ctx e) Tuint64) then failf "slice bound must be uint64"
      | None -> ()
    in
    check_ix lo;
    check_ix hi;
    match infer ctx s with
    | Tslice t -> Tslice t
    | Tstring -> Tstring
    | t -> failf "slicing a %a" pp_typ t)
  | Addr_of e1 -> Tptr (infer ctx e1)
  | Deref e1 -> (
    match infer ctx e1 with
    | Tptr t -> t
    | t -> failf "dereference of %a" pp_typ t)
  | Conv (t, e1) -> (
    let te = infer ctx e1 in
    match t, te with
    | Tstring, Tslice Tbyte
    | Tslice Tbyte, Tstring
    | Tuint64, (Tuint64 | Tbyte)
    | Tbyte, Tuint64
    | Tstring, Tstring ->
      t
    | _ -> failf "unsupported conversion %a(%a)" pp_typ t pp_typ te)

and infer_call ctx path args : typ =
  let arg_types = List.map (infer ctx) args in
  let check_sig name (params, results) =
    if List.length params <> List.length arg_types then
      failf "%s expects %d arguments, given %d" name (List.length params)
        (List.length arg_types);
    List.iteri
      (fun i (p, a) ->
        if not (equal_typ p a) then
          failf "%s argument %d has type %a, expected %a" name (i + 1) pp_typ a pp_typ p)
      (List.combine params arg_types);
    results_to_typ results
  in
  match path with
  | [ pkg; fn ] -> (
    let qualified = pkg ^ "." ^ fn in
    match List.assoc_opt qualified stdlib_sigs with
    | Some s -> check_sig qualified s
    | None -> failf "unknown library function %s" qualified)
  | [ name ] -> (
    match find_func ctx.file name with
    | Some f -> check_sig name (List.map snd f.params, f.results)
    | None -> failf "unknown function %s" name)
  | _ -> failf "malformed call path"

let rec check_block ctx (b : block) : unit =
  ignore (List.fold_left check_stmt ctx b)

and check_stmt ctx (s : stmt) : ctx =
  match s with
  | Define (names, e) -> (
    let t = infer ctx e in
    match names, t with
    | [ x ], t -> { ctx with vars = SMap.add x t ctx.vars }
    | xs, Ttuple ts when List.length xs = List.length ts ->
      { ctx with
        vars = List.fold_left2 (fun m x t -> if x = "_" then m else SMap.add x t m) ctx.vars xs ts
      }
    | xs, t -> failf "%d names := a %a" (List.length xs) pp_typ t)
  | Var_decl (x, Some t, init) ->
    (match init with
    | Some e ->
      let te = infer ctx e in
      if not (equal_typ te t) then failf "var %s: initializer has type %a" x pp_typ te
    | None -> ());
    { ctx with vars = SMap.add x t ctx.vars }
  | Var_decl (x, None, Some e) -> { ctx with vars = SMap.add x (infer ctx e) ctx.vars }
  | Var_decl (x, None, None) -> failf "var %s needs a type or initializer" x
  | Assign (lvs, e) -> (
    let t = infer ctx e in
    let check_lv lv t =
      match lv with
      | Lwild -> ()
      | Lident x -> (
        match SMap.find_opt x ctx.vars with
        | Some tx ->
          if not (equal_typ tx t) then failf "assigning %a to %s : %a" pp_typ t x pp_typ tx
        | None -> failf "assignment to undeclared %s" x)
      | Lindex (se, ie) -> (
        match infer ctx se with
        | Tslice et ->
          if not (equal_typ (infer ctx ie) Tuint64) then failf "slice index must be uint64";
          if not (equal_typ et t) then failf "slice element type mismatch in store"
        | Tmap (k, v) ->
          if not (equal_typ (infer ctx ie) k) then failf "map key type mismatch in store";
          if not (equal_typ v t) then failf "map value type mismatch in store"
        | ty -> failf "indexed store on %a" pp_typ ty)
      | Lfield (se, f) -> (
        match infer ctx se with
        | Tnamed name | Tptr (Tnamed name) -> (
          match List.assoc_opt f (struct_fields ctx name) with
          | Some tf ->
            if not (equal_typ tf t) then failf "field %s type mismatch in store" f
          | None -> failf "no field %s" f)
        | ty -> failf "field store on %a" pp_typ ty)
      | Lderef pe -> (
        match infer ctx pe with
        | Tptr tp -> if not (equal_typ tp t) then failf "pointer store type mismatch"
        | ty -> failf "store through %a" pp_typ ty)
    in
    match lvs, t with
    | [ lv ], t ->
      check_lv lv t;
      ctx
    | lvs, Ttuple ts when List.length lvs = List.length ts ->
      List.iter2 check_lv lvs ts;
      ctx
    | _ -> failf "arity mismatch in assignment")
  | Expr_stmt e ->
    ignore (infer ctx e);
    ctx
  | If (c, t, f) ->
    if not (equal_typ (infer ctx c) Tbool) then failf "if condition must be bool";
    check_block ctx t;
    check_block ctx f;
    ctx
  | For (init, cond, post, body) ->
    let ctx' = match init with Some s -> check_stmt ctx s | None -> ctx in
    (match cond with
    | Some c ->
      if not (equal_typ (infer ctx' c) Tbool) then failf "for condition must be bool"
    | None -> ());
    let ctx_loop = { ctx' with in_loop = true } in
    (match post with Some s -> ignore (check_stmt ctx_loop s) | None -> ());
    check_block ctx_loop body;
    ctx
  | For_range (kx, vx, e, body) -> (
    let bind k v =
      let vars = if kx = "_" then ctx.vars else SMap.add kx k ctx.vars in
      let vars = if vx = "_" then vars else SMap.add vx v vars in
      check_block { ctx with vars; in_loop = true } body;
      ctx
    in
    match infer ctx e with
    | Tslice t -> bind Tuint64 t
    | Tstring -> bind Tuint64 Tbyte
    | Tmap (k, v) -> bind k v
    | t -> failf "range over %a" pp_typ t)
  | Return es ->
    let ts = List.map (infer ctx) es in
    if List.length ts <> List.length ctx.results then
      failf "return arity: %d values, function declares %d" (List.length ts)
        (List.length ctx.results);
    List.iteri
      (fun i (t, r) ->
        if not (equal_typ t r) then
          failf "return value %d has type %a, expected %a" (i + 1) pp_typ t pp_typ r)
      (List.combine ts ctx.results);
    ctx
  | Go_stmt e -> (
    match e with
    | Call (path, args) ->
      ignore (infer_call ctx path args);
      ctx
    | _ -> failf "go must be applied to a call")
  | Break | Continue -> if ctx.in_loop then ctx else failf "break/continue outside loop"
  | Block b ->
    check_block ctx b;
    ctx

let check_file (file : file) : unit =
  (* duplicate declarations *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then failf "duplicate function %s" f.fname;
      Hashtbl.add seen f.fname ())
    file.funcs;
  List.iter
    (fun f ->
      let vars =
        List.fold_left (fun m (p, t) -> SMap.add p t m) SMap.empty f.params
      in
      check_block { file; vars; results = f.results; in_loop = false } f.body)
    file.funcs
