(** Disk blocks: opaque byte strings.  [zero] is the content of a freshly
    initialized disk; disks normalize zero blocks so that "never written"
    and "written zero" are the same state. *)

type t

val zero : t
val of_string : string -> t
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val to_value : t -> Tslang.Value.t
(** Blocks cross the program/spec boundary as universal string values. *)

val of_value : Tslang.Value.t -> t
(** Partial: raises [Invalid_argument] on a non-string value. *)
