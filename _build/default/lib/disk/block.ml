(** Disk blocks.  A block is an opaque byte string; [zero] is the content of
    a freshly initialized disk. *)

type t = string

let zero = "0"
let of_string s = s
let to_string b = b
let equal = String.equal
let compare = String.compare
let pp ppf b = Fmt.pf ppf "%S" b

let to_value b = Tslang.Value.str b
let of_value v = Tslang.Value.get_str v
