(** Single-disk semantics (Table 3): one durable array of blocks with atomic
    per-block reads and writes — the substrate under the shadow-copy,
    write-ahead-log and group-commit examples. *)

type t

val init : int -> t
(** [init size]: all blocks zero. *)

val size : t -> int
val in_bounds : t -> int -> bool

val get : t -> int -> Block.t
(** Raises [Invalid_argument] out of bounds (a harness bug; program-level
    access goes through {!read}, where it is undefined behaviour). *)

val set : t -> int -> Block.t -> t
(** Raises [Invalid_argument] out of bounds. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val crash : t -> t
(** Disk contents survive crashes unchanged. *)

(** {1 Program-level operations} (atomic steps, lens-composed) *)

val read : get_disk:('w -> t) -> int -> ('w, Tslang.Value.t) Sched.Prog.t
(** Out-of-bounds access is undefined behaviour. *)

val write :
  get_disk:('w -> t) -> set_disk:('w -> t -> 'w) -> int -> Block.t -> ('w, unit) Sched.Prog.t
