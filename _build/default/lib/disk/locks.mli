(** In-memory lock maps, lens-composed into a larger world.

    Locks are volatile: a crash clears them ([empty]).  The runner/checker
    treats a failed acquisition as a blocked step; releasing a lock nobody
    holds is undefined behaviour (a broken lock discipline). *)

type t
(** The set of currently-held lock ids. *)

val empty : t
val is_held : int -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val acquire :
  get:('w -> t) -> set:('w -> t -> 'w) -> int -> ('w, unit) Sched.Prog.t
(** Blocks (is unschedulable) while the lock is held, then takes it. *)

val release :
  get:('w -> t) -> set:('w -> t -> 'w) -> int -> ('w, unit) Sched.Prog.t
(** Frees the lock; undefined behaviour if it was not held. *)
