(** Two-disk semantics (Table 3, §1): two physical disks of which at most
    one may fail — the substrate of the replicated-disk example.

    A read of a failed disk reports failure (the [ok] flag of the paper's
    [disk_read], encoded as an option value); a write to a failed disk is a
    silent no-op.  In [may_fail] mode every read/write also
    nondeterministically branches into "this disk just failed", which is
    how the checker covers fail-over paths. *)

type id = D1 | D2

val pp_id : id Fmt.t

type t = {
  d1 : Single_disk.t option;  (** [None] = failed *)
  d2 : Single_disk.t option;
  may_fail : bool;
}

val init : ?may_fail:bool -> int -> t
val size : t -> int
val disk : t -> id -> Single_disk.t option
val one_failed : t -> bool

val fail : t -> id -> t
(** Fail a disk; a no-op if the other disk already failed (the model
    tolerates exactly one failure). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val crash : t -> t
(** Disks, including their failure status, survive crashes. *)

(** {1 Program-level operations} *)

val read :
  get:('w -> t) -> set:('w -> t -> 'w) -> id -> int -> ('w, Tslang.Value.t) Sched.Prog.t
(** Returns [Some block] or [None] (failed disk), as a [Value.Opt]. *)

val write :
  get:('w -> t) -> set:('w -> t -> 'w) -> id -> int -> Block.t -> ('w, unit) Sched.Prog.t
