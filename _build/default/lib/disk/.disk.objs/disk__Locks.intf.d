lib/disk/locks.mli: Fmt Sched
