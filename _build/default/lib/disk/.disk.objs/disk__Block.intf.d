lib/disk/block.mli: Fmt Tslang
