lib/disk/single_disk.mli: Block Fmt Sched Tslang
