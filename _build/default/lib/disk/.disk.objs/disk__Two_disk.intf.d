lib/disk/two_disk.mli: Block Fmt Sched Single_disk Tslang
