lib/disk/block.ml: Fmt String Tslang
