lib/disk/locks.ml: Fmt Int Printf Sched Set Tslang
