lib/disk/single_disk.ml: Block Fmt Int Map Printf Sched Tslang
