lib/disk/two_disk.ml: Block Bool Fmt Option Printf Sched Single_disk Tslang
