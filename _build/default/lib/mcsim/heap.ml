(** A small binary min-heap keyed by float, for the event queue. *)

type 'a t = { mutable data : (float * 'a) array; mutable size : int }

let create () = { data = Array.make 64 (0., Obj.magic 0); size = 0 }

let is_empty h = h.size = 0

let grow h =
  if h.size = Array.length h.data then begin
    let data = Array.make (2 * h.size) h.data.(0) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push h key v =
  grow h;
  let i = ref h.size in
  h.size <- h.size + 1;
  h.data.(!i) <- (key, v);
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if fst h.data.(!i) < fst h.data.(parent) then begin
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(!smallest);
        h.data.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end
