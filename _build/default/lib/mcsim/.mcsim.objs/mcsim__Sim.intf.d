lib/mcsim/sim.mli:
