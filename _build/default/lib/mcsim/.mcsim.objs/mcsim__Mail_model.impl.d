lib/mcsim/mail_model.ml: Array Hashtbl List Mailboat Sim
