lib/mcsim/heap.ml: Array Obj
