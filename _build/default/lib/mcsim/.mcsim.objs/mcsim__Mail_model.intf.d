lib/mcsim/mail_model.mli: Mailboat Sim
