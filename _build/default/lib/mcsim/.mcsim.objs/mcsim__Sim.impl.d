lib/mcsim/sim.ml: Array Hashtbl Heap List Printf
