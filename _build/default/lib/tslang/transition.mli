(** The transition-system specification DSL (paper §3.1, Figure 3).

    A [('s, 'a) t] is a possibly-nondeterministic, possibly-undefined atomic
    transition over states of type ['s] returning a value of type ['a].  It is
    the OCaml rendering of Perennial's Coq-embedded DSL: specifications are
    written with [gets], [modify], [ret], [undefined] and monadic [bind], and
    — unlike in Coq — can be *executed*: [run] enumerates every outcome, which
    is what the refinement checker consumes. *)

type ('s, 'a) t

(** {1 Constructors} *)

val ret : 'a -> ('s, 'a) t
(** [ret v] does not change the state and returns [v]. *)

val bind : ('s, 'a) t -> ('a -> ('s, 'b) t) -> ('s, 'b) t

val gets : ('s -> 'a) -> ('s, 'a) t
(** [gets f] reads the state through [f] without changing it. *)

val modify : ('s -> 's) -> ('s, unit) t
(** [modify f] replaces the state [s] with [f s]. *)

val undefined : ('s, 'a) t
(** Undefined behaviour: the specification places no constraint on the
    implementation for this call (paper §3.1: out-of-bounds access). *)

val choose : 'a list -> ('s, 'a) t
(** Nondeterministic choice among a finite set of values; the implementation
    may realize any of them.  [choose []] is an unsatisfiable transition —
    no outcome at all (distinct from [undefined]). *)

val puts : 's -> ('s, unit) t
(** [puts s] unconditionally replaces the state. *)

val reads : ('s, 's) t
(** Return the whole state. *)

val check : bool -> ('s, unit) t
(** [check b] is [ret ()] if [b], and [undefined] otherwise: guard used to
    make preconditions explicit, as in [rd_write]'s bounds check. *)

val guard : bool -> ('s, unit) t
(** [guard b] is [ret ()] if [b] and the empty choice otherwise: prunes a
    nondeterministic branch rather than declaring it undefined. *)

val ignore_ret : ('s, 'a) t -> ('s, unit) t

(** {1 Binding operators} *)

module Syntax : sig
  val ( let* ) : ('s, 'a) t -> ('a -> ('s, 'b) t) -> ('s, 'b) t
  val ( let+ ) : ('s, 'a) t -> ('a -> 'b) -> ('s, 'b) t
end

(** {1 Execution} *)

type ('s, 'a) outcome =
  | Ok of 's * 'a  (** the transition may step to this state with this value *)
  | Undefined_behaviour  (** some execution path hit [undefined] *)

val run : ('s, 'a) t -> 's -> ('s, 'a) outcome list
(** Enumerate every outcome of the transition from a given state.  The list
    is empty iff the transition is unsatisfiable from that state. *)

val outcomes : ('s, 'a) t -> 's -> ('s * 'a) list
(** Defined outcomes only (drops [Undefined_behaviour]). *)

val has_undefined : ('s, 'a) t -> 's -> bool
(** True iff some execution path from this state is undefined. *)

val is_deterministic : ('s, 'a) t -> 's -> bool
(** True iff there is exactly one outcome and it is defined. *)

val pp_outcome :
  '
  s Fmt.t -> 'a Fmt.t -> Format.formatter -> ('s, 'a) outcome -> unit
