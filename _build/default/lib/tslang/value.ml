type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Opt of t option

let unit = Unit
let bool b = Bool b
let int n = Int n
let str s = Str s
let pair a b = Pair (a, b)
let list vs = List vs
let some v = Opt (Some v)
let none = Opt None

let rec equal a b =
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Opt None, Opt None -> true
  | Opt (Some x), Opt (Some y) -> equal x y
  | (Unit | Bool _ | Int _ | Str _ | Pair _ | List _ | Opt _), _ -> false

let rec compare a b =
  let tag = function
    | Unit -> 0 | Bool _ -> 1 | Int _ -> 2 | Str _ -> 3
    | Pair _ -> 4 | List _ -> 5 | Opt _ -> 6
  in
  match a, b with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2
  | List xs, List ys -> List.compare compare xs ys
  | Opt x, Opt y -> Option.compare compare x y
  | _, _ -> Int.compare (tag a) (tag b)

let hash v = Hashtbl.hash v

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.semi pp) vs
  | Opt None -> Fmt.string ppf "None"
  | Opt (Some v) -> Fmt.pf ppf "Some %a" pp v

let to_string v = Fmt.str "%a" pp v

let get_int = function Int n -> n | v -> invalid_arg ("Value.get_int: " ^ to_string v)
let get_bool = function Bool b -> b | v -> invalid_arg ("Value.get_bool: " ^ to_string v)
let get_str = function Str s -> s | v -> invalid_arg ("Value.get_str: " ^ to_string v)
let get_list = function List vs -> vs | v -> invalid_arg ("Value.get_list: " ^ to_string v)
let get_pair = function Pair (a, b) -> (a, b) | v -> invalid_arg ("Value.get_pair: " ^ to_string v)
let get_opt = function Opt o -> o | v -> invalid_arg ("Value.get_opt: " ^ to_string v)
