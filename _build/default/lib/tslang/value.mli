(** Universal observable values.

    Specifications, implementations and the refinement checker all exchange
    values of this single type so that return values of operations can be
    compared for equality without any per-system plumbing.  The constructors
    cover everything the paper's systems need: unit, booleans, 64-bit-style
    integers, strings, byte blocks, options, pairs and lists. *)

type t =
  | Unit
  | Bool of bool
  | Int of int  (** models Go's [uint64]; arithmetic wraps at 2^63-1 in practice *)
  | Str of string  (** also used for byte slices/blocks *)
  | Pair of t * t
  | List of t list
  | Opt of t option

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t
val some : t -> t
val none : t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Partial projections; raise [Invalid_argument] on the wrong constructor.
    They are used at trusted boundaries (interpreting specs) where the shape
    is known by construction. *)

val get_int : t -> int
val get_bool : t -> bool
val get_str : t -> string
val get_list : t -> t list
val get_pair : t -> t * t
val get_opt : t -> t option
