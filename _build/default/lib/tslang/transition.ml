type ('s, 'a) t =
  | Ret : 'a -> ('s, 'a) t
  | Bind : ('s, 'b) t * ('b -> ('s, 'a) t) -> ('s, 'a) t
  | Gets : ('s -> 'a) -> ('s, 'a) t
  | Modify : ('s -> 's) -> ('s, unit) t
  | Undefined : ('s, 'a) t
  | Choose : 'a list -> ('s, 'a) t

let ret v = Ret v
let bind m f = Bind (m, f)
let gets f = Gets f
let modify f = Modify f
let undefined = Undefined
let choose vs = Choose vs
let puts s = Modify (fun _ -> s)
let reads = Gets (fun s -> s)
let check b = if b then Ret () else Undefined
let guard b = if b then Ret () else Choose []
let ignore_ret m = Bind (m, fun _ -> Ret ())

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = bind m (fun x -> ret (f x))
end

type ('s, 'a) outcome =
  | Ok of 's * 'a
  | Undefined_behaviour

(* Depth-first enumeration of all outcomes.  Nondeterminism multiplies
   branches; [Undefined] taints only the branch that reaches it. *)
let rec run : type a. ('s, a) t -> 's -> ('s, a) outcome list =
 fun m s ->
  match m with
  | Ret v -> [ Ok (s, v) ]
  | Gets f -> [ Ok (s, f s) ]
  | Modify f -> [ Ok (f s, ()) ]
  | Undefined -> [ Undefined_behaviour ]
  | Choose vs -> List.map (fun v -> Ok (s, v)) vs
  | Bind (m, f) ->
    let continue = function
      | Undefined_behaviour -> [ Undefined_behaviour ]
      | Ok (s', v) -> run (f v) s'
    in
    List.concat_map continue (run m s)

let outcomes m s =
  List.filter_map (function Ok (s', v) -> Some (s', v) | Undefined_behaviour -> None) (run m s)

let has_undefined m s =
  List.exists (function Undefined_behaviour -> true | Ok _ -> false) (run m s)

let is_deterministic m s =
  match run m s with [ Ok _ ] -> true | _ -> false

let pp_outcome pp_state pp_value ppf = function
  | Ok (s, v) -> Fmt.pf ppf "@[<h>Ok (%a, %a)@]" pp_state s pp_value v
  | Undefined_behaviour -> Fmt.string ppf "undefined"
