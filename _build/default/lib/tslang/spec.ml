type 's t = {
  name : string;
  init : 's;
  compare_state : 's -> 's -> int;
  pp_state : 's Fmt.t;
  step : string -> Value.t list -> ('s, Value.t) Transition.t;
  crash : ('s, unit) Transition.t;
}

type call = { op : string; args : Value.t list }

let call op args = { op; args }

let pp_call ppf { op; args } =
  Fmt.pf ppf "%s(%a)" op (Fmt.list ~sep:Fmt.comma Value.pp) args

let equal_call a b =
  String.equal a.op b.op
  && List.length a.args = List.length b.args
  && List.for_all2 Value.equal a.args b.args

let op_outcomes spec s { op; args } = Transition.outcomes (spec.step op args) s

let op_has_undefined spec s { op; args } =
  Transition.has_undefined (spec.step op args) s

let crash_outcomes spec s =
  List.map fst (Transition.outcomes spec.crash s)
