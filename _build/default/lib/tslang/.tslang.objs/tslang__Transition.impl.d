lib/tslang/transition.ml: Fmt List
