lib/tslang/value.mli: Format
