lib/tslang/value.ml: Bool Fmt Hashtbl Int List Option String
