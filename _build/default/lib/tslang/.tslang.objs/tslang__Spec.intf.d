lib/tslang/spec.mli: Fmt Transition Value
