lib/tslang/spec.ml: Fmt List String Transition Value
