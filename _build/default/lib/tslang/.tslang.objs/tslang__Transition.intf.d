lib/tslang/transition.mli: Fmt Format
