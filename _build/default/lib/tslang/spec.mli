(** Specification transition systems.

    A [('s) t] packages everything the refinement checker needs about a
    specification: the initial state, the per-operation transitions (looked up
    by operation name with universal-value arguments), and the crash
    transition (paper §3.1).  Operation return values are universal
    {!Value.t}s so that a single checker works for every system. *)

type 's t = {
  name : string;  (** system name, for reports *)
  init : 's;
  compare_state : 's -> 's -> int;
  pp_state : 's Fmt.t;
  step : string -> Value.t list -> ('s, Value.t) Transition.t;
      (** [step op args] is the atomic transition of operation [op]; raises
          [Invalid_argument] for unknown operation names (a harness bug, not
          a verification failure). *)
  crash : ('s, unit) Transition.t;
      (** What a crash (followed by recovery) may do to the abstract state.
          [ret ()] means crash-durable: no data is lost. *)
}

(** A pending or completed call, as the checker tracks them. *)
type call = { op : string; args : Value.t list }

val call : string -> Value.t list -> call
val pp_call : call Fmt.t
val equal_call : call -> call -> bool

val op_outcomes : 's t -> 's -> call -> ('s * Value.t) list
(** Defined outcomes of one operation from one state. *)

val op_has_undefined : 's t -> 's -> call -> bool
(** Whether the operation triggers specification-level undefined behaviour
    from this state (e.g. out-of-bounds address); refinement obligations are
    vacuous for such calls. *)

val crash_outcomes : 's t -> 's -> 's list
(** Defined outcomes of the crash transition. *)
