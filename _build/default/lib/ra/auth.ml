(** Authoritative camera Auth(M) over a unital, ordered M.

    [auth a] (written ●a) is the single authoritative element — the "real"
    state, held by an invariant; [frag b] (◯b) is a fragment a thread owns.
    Validity of [●a ⋅ ◯b] requires [b ≼ a]: fragments never lie about the
    authoritative state.  This is the camera behind the master/lease split
    and the [source σ] refinement resource (paper §4-§5). *)

module Make (M : sig
  include Ra_intf.UNITAL

  val included : t -> t -> bool
end) : sig
  include Ra_intf.S

  val auth : M.t -> t
  val frag : M.t -> t
  val both : M.t -> M.t -> t
  val get_auth : t -> M.t option
  val get_frag : t -> M.t
end = struct
  type authority = No_auth | The_auth of M.t | Auth_bot

  type t = { a : authority; f : M.t }

  let auth a = { a = The_auth a; f = M.unit }
  let frag f = { a = No_auth; f }
  let both a f = { a = The_auth a; f }
  let get_auth x = match x.a with The_auth a -> Some a | No_auth | Auth_bot -> None
  let get_frag x = x.f

  let equal_authority x y =
    match x, y with
    | No_auth, No_auth -> true
    | The_auth a, The_auth b -> M.equal a b
    | Auth_bot, Auth_bot -> true
    | (No_auth | The_auth _ | Auth_bot), _ -> false

  let equal x y = equal_authority x.a y.a && M.equal x.f y.f

  let valid x =
    match x.a with
    | Auth_bot -> false
    | No_auth -> M.valid x.f
    | The_auth a -> M.valid a && M.included x.f a

  let op x y =
    let a =
      match x.a, y.a with
      | No_auth, z | z, No_auth -> z
      | (The_auth _ | Auth_bot), _ -> Auth_bot
    in
    { a; f = M.op x.f y.f }

  let core x =
    match M.core x.f with
    | Some c -> Some { a = No_auth; f = c }
    | None -> Some { a = No_auth; f = M.unit }

  let pp ppf x =
    match x.a with
    | No_auth -> Fmt.pf ppf "◯%a" M.pp x.f
    | The_auth a ->
      if M.equal x.f M.unit then Fmt.pf ppf "●%a" M.pp a
      else Fmt.pf ppf "●%a ⋅ ◯%a" M.pp a M.pp x.f
    | Auth_bot -> Fmt.string ppf "AuthBot"
end
