(** Exclusive camera Ex(A): at most one owner, no core.
    The camera behind plain points-to capabilities [a ↦ v]. *)

module Make (A : Ra_intf.EQ) : sig
  include Ra_intf.S

  val ex : A.t -> t
  val bot : t

  val get : t -> A.t option
  (** The payload, if the element is a valid exclusive token. *)
end = struct
  type t = Ex of A.t | Bot

  let ex a = Ex a
  let bot = Bot
  let get = function Ex a -> Some a | Bot -> None

  let equal x y =
    match x, y with
    | Ex a, Ex b -> A.equal a b
    | Bot, Bot -> true
    | (Ex _ | Bot), _ -> false

  let valid = function Ex _ -> true | Bot -> false

  (* Two exclusive tokens can never coexist. *)
  let op _ _ = Bot
  let core _ = None

  let pp ppf = function
    | Ex a -> Fmt.pf ppf "Ex %a" A.pp a
    | Bot -> Fmt.string ppf "ExBot"
end
