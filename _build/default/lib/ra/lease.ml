(** The recovery-lease camera (paper §5.3).

    For one durable location this camera has two token kinds:
    - [master n v] — the master copy [d[a] ↦ₙ v], kept in the crash invariant;
    - [lease n v]  — the temporary lease [leaseₙ(d[a], v)], protected by locks.

    Both are exclusive *per version*: two masters never compose, nor do two
    leases at the same version.  When a master and a lease at the same
    version coexist they must agree on the value — that is what lets the
    lock invariant (holding the lease) and the crash invariant (holding the
    master) talk about the same durable state without duplicating a
    capability.

    Frame-preserving updates (validated in the test suite with {!Fpu}):
    - write:     [master n v₀ ⋅ lease n v₀ ⇝ master n v ⋅ lease n v]
    - synthesis: [master n v ⇝ master (n+1) v ⋅ lease (n+1) v], sound
      against frames at versions ≤ n (version freshness is discharged by the
      versioned Hoare triples of §5.2, which rule out capabilities from the
      future). *)

module Make (A : Ra_intf.EQ) : sig
  include Ra_intf.UNITAL

  val master : int -> A.t -> t
  val lease : int -> A.t -> t

  val write : t -> A.t -> t option
  (** [write x v] performs the write update if [x] contains a matching
      master/lease pair at some version; [None] otherwise. *)

  val synthesize : t -> t option
  (** [synthesize x] turns a bare master at version [n] into a master+lease
      pair at [n+1] (the crash rule); [None] if [x] is not a bare master. *)

  val get_master : t -> (int * A.t) option
  val get_lease : int -> t -> A.t option
end = struct
  type content = { master : (int * A.t) option; leases : (int * A.t) list }
  (* [leases] sorted by version, one per version. *)

  type t = Bot | El of content

  let unit = El { master = None; leases = [] }
  let master n v = El { master = Some (n, v); leases = [] }
  let lease n v = El { master = None; leases = [ (n, v) ] }

  let get_master = function El { master; _ } -> master | Bot -> None

  let get_lease n = function
    | El { leases; _ } -> List.assoc_opt n leases
    | Bot -> None

  let equal x y =
    match x, y with
    | Bot, Bot -> true
    | El a, El b ->
      Option.equal (fun (n1, v1) (n2, v2) -> n1 = n2 && A.equal v1 v2) a.master b.master
      && List.equal (fun (n1, v1) (n2, v2) -> n1 = n2 && A.equal v1 v2) a.leases b.leases
    | (Bot | El _), _ -> false

  let valid = function
    | Bot -> false
    | El { master; leases } ->
      (match master with
      | None -> true
      | Some (n, v) ->
        (match List.assoc_opt n leases with
        | None -> true
        | Some v' -> A.equal v v'))

  let merge_leases a b =
    let rec go acc = function
      | [], rest | rest, [] -> Some (List.rev_append acc rest)
      | ((n1, _) :: _ as l1), ((n2, v2) :: t2) when n2 < n1 -> go ((n2, v2) :: acc) (l1, t2)
      | (n1, v1) :: t1, ((n2, _) :: _ as l2) when n1 < n2 -> go ((n1, v1) :: acc) (t1, l2)
      | (_, _) :: _, (_, _) :: _ -> None (* same version twice: invalid *)
    in
    go [] (a, b)

  let op x y =
    match x, y with
    | Bot, _ | _, Bot -> Bot
    | El a, El b ->
      let master =
        match a.master, b.master with
        | None, m | m, None -> Some m
        | Some _, Some _ -> None (* two masters *)
      in
      (match master, merge_leases a.leases b.leases with
      | Some master, Some leases -> El { master; leases }
      | None, _ | _, None -> Bot)

  let core _ = Some unit

  let write x v =
    match x with
    | El { master = Some (n, v0); leases = [ (n', v0') ] }
      when n = n' && A.equal v0 v0' ->
      Some (El { master = Some (n, v); leases = [ (n, v) ] })
    | Bot | El _ -> None

  let synthesize = function
    | El { master = Some (n, v); leases = [] } ->
      Some (El { master = Some (n + 1, v); leases = [ (n + 1, v) ] })
    | Bot | El _ -> None

  let pp ppf = function
    | Bot -> Fmt.string ppf "LeaseBot"
    | El { master; leases } ->
      let pp_master ppf (n, v) = Fmt.pf ppf "master_%d %a" n A.pp v in
      let pp_lease ppf (n, v) = Fmt.pf ppf "lease_%d %a" n A.pp v in
      (match master, leases with
      | None, [] -> Fmt.string ppf "ε"
      | _, _ ->
        Fmt.pf ppf "%a%s%a"
          (Fmt.option pp_master) master
          (if master <> None && leases <> [] then " ⋅ " else "")
          (Fmt.list ~sep:(Fmt.any " ⋅ ") pp_lease) leases)
end
