(** Law checkers for resource algebras.

    Coq proves these laws once and for all; here they are decidable
    per-element predicates, which the test suite quantifies over with qcheck
    and finite samples.  An instance that violates any law would make the
    separation logic built on it unsound, so these are the "machine-checked
    soundness" analogue for the camera layer. *)

module Make (M : Ra_intf.S) = struct
  let assoc a b c = M.equal (M.op a (M.op b c)) (M.op (M.op a b) c)
  let comm a b = M.equal (M.op a b) (M.op b a)

  (* Validity is down-closed: a composite being valid means each part is. *)
  let valid_op_l a b = (not (M.valid (M.op a b))) || M.valid a

  (* Core laws: the core is idempotent, absorbed by its element, and itself
     duplicable. *)
  let core_absorb a =
    match M.core a with None -> true | Some c -> M.equal (M.op c a) a

  let core_idem a =
    match M.core a with
    | None -> true
    | Some c -> (match M.core c with Some c' -> M.equal c c' | None -> false)

  let core_dup a =
    match M.core a with None -> true | Some c -> M.equal (M.op c c) c

  let all_laws a b c =
    assoc a b c && comm a b && valid_op_l a b && core_absorb a && core_idem a
    && core_dup a

  (** Check every law over a finite sample; returns the failing triple if
      any.  Used both by tests and by [bench table1] to report law
      coverage. *)
  let check_sample sample =
    let failure = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            List.iter
              (fun c -> if !failure = None && not (all_laws a b c) then failure := Some (a, b, c))
              sample)
          sample)
      sample;
    !failure
end

module Unital_laws (M : Ra_intf.UNITAL) = struct
  let unit_valid () = M.valid M.unit
  let unit_left a = M.equal (M.op M.unit a) a

  let unit_core () =
    match M.core M.unit with Some c -> M.equal c M.unit | None -> false
end
