(** Sum camera: an element is in the left or the right algebra; mixing sides
    is invalid.  Used for state machines whose resource changes flavour
    (e.g. "uncommitted" vs "committed" transaction tokens). *)

module Make (A : Ra_intf.S) (B : Ra_intf.S) : sig
  include Ra_intf.S

  val inl : A.t -> t
  val inr : B.t -> t
  val get_l : t -> A.t option
  val get_r : t -> B.t option
end = struct
  type t = Inl of A.t | Inr of B.t | Bot

  let inl a = Inl a
  let inr b = Inr b
  let get_l = function Inl a -> Some a | Inr _ | Bot -> None
  let get_r = function Inr b -> Some b | Inl _ | Bot -> None

  let equal x y =
    match x, y with
    | Inl a, Inl b -> A.equal a b
    | Inr a, Inr b -> B.equal a b
    | Bot, Bot -> true
    | (Inl _ | Inr _ | Bot), _ -> false

  let valid = function Inl a -> A.valid a | Inr b -> B.valid b | Bot -> false

  let op x y =
    match x, y with
    | Inl a, Inl b -> Inl (A.op a b)
    | Inr a, Inr b -> Inr (B.op a b)
    | (Inl _ | Inr _ | Bot), _ -> Bot

  let core = function
    | Inl a -> Option.map (fun c -> Inl c) (A.core a)
    | Inr b -> Option.map (fun c -> Inr c) (B.core b)
    | Bot -> Some Bot

  let pp ppf = function
    | Inl a -> Fmt.pf ppf "inl %a" A.pp a
    | Inr b -> Fmt.pf ppf "inr %a" B.pp b
    | Bot -> Fmt.string ppf "SumBot"
end
