(** Max-nat camera: composition is [max]; fully persistent.  The camera of
    monotone counters — Perennial's crash generation number lives here: a
    thread holding [n] knows the generation is at least [n], and generations
    only grow. *)

type t = int

let of_int n = if n < 0 then invalid_arg "Max_nat.of_int: negative" else n
let to_int n = n
let equal = Int.equal
let valid n = n >= 0
let op = Int.max
let core n = Some n
let unit = 0
let included a b = a <= b
let pp = Fmt.int
