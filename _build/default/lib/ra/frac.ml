(** Fractional camera: permissions in (0, 1]; composition adds and overflows
    past 1 become invalid.  [one] is full (exclusive-like) ownership. *)

type t = Q.t

let of_q q = q
let to_q q = q
let one = Q.one
let half = Q.half
let quarter = Q.div2 Q.half
let equal = Q.equal
let valid q = Q.lt Q.zero q && Q.leq q Q.one
let op = Q.add
let core _ = None
let split q = Q.div2 q
let pp = Q.pp
