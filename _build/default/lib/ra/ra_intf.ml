(** Signatures for resource algebras (Iris "cameras", discrete fragment).

    A resource algebra is a commutative semigroup [op] with a validity
    predicate and a partial [core] extracting the duplicable part of an
    element.  Capabilities in the logic (points-to facts, leases, refinement
    tokens) are elements of such algebras; separating conjunction is [op] and
    "the capabilities are compatible" is [valid] (paper §4). *)

module type EQ = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t
end

module type S = sig
  type t

  val equal : t -> t -> bool
  val valid : t -> bool

  val op : t -> t -> t
  (** Total composition; incompatible elements compose to an *invalid*
      element rather than failing, as in Iris. *)

  val core : t -> t option
  (** The duplicable core: [core a = Some c] means [c] may be shared freely
      ([op c a = a] and [core c = Some c]).  [None] for wholly exclusive
      elements. *)

  val pp : t Fmt.t
end

module type UNITAL = sig
  include S

  val unit : t
  (** Identity of [op]; always valid; its own core. *)
end

(** Algebras with a decidable inclusion order, needed by [Auth]:
    [included a b] iff there is [c] with [op a c = b] (or [a = b]). *)
module type ORDERED = sig
  include S

  val included : t -> t -> bool
end

(** A finite sample of the algebra's carrier, used to property-check laws and
    frame-preserving updates by enumeration. *)
module type FINITE = sig
  include S

  val sample : t list
end
