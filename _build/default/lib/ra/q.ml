type t = { n : int; d : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make n d =
  if d <= 0 then invalid_arg "Q.make: nonpositive denominator";
  let sign = if n < 0 then -1 else 1 in
  let n' = abs n in
  let g = if n' = 0 then d else gcd (max n' d) (min n' d) in
  { n = sign * (n' / g); d = d / g }

let zero = { n = 0; d = 1 }
let one = { n = 1; d = 1 }
let half = { n = 1; d = 2 }
let num q = q.n
let den q = q.d
let add a b = make ((a.n * b.d) + (b.n * a.d)) (a.d * b.d)
let sub a b = make ((a.n * b.d) - (b.n * a.d)) (a.d * b.d)
let div2 a = make a.n (a.d * 2)
let equal a b = a.n = b.n && a.d = b.d
let compare a b = Int.compare (a.n * b.d) (b.n * a.d)
let leq a b = compare a b <= 0
let lt a b = compare a b < 0
let pp ppf q = if q.d = 1 then Fmt.int ppf q.n else Fmt.pf ppf "%d/%d" q.n q.d
