(** Grow-only set camera: composition is union; fully persistent.  Models
    monotone knowledge such as "these message IDs have been allocated". *)

module Make (A : Ra_intf.EQ) : sig
  include Ra_intf.UNITAL

  val of_list : A.t list -> t
  val to_list : t -> A.t list
  val mem : A.t -> t -> bool
  val add : A.t -> t -> t
  val included : t -> t -> bool
end = struct
  module S = Set.Make (struct
    type t = A.t

    let compare = A.compare
  end)

  type t = S.t

  let of_list = S.of_list
  let to_list = S.elements
  let mem = S.mem
  let add = S.add
  let equal = S.equal
  let valid _ = true
  let op = S.union
  let core s = Some s
  let unit = S.empty
  let included = S.subset
  let pp ppf s = Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma A.pp) (S.elements s)
end
