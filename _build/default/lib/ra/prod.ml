(** Product camera: componentwise composition and validity. *)

module Make (A : Ra_intf.S) (B : Ra_intf.S) : sig
  include Ra_intf.S with type t = A.t * B.t
end = struct
  type t = A.t * B.t

  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2
  let valid (a, b) = A.valid a && B.valid b
  let op (a1, b1) (a2, b2) = (A.op a1 a2, B.op b1 b2)

  let core (a, b) =
    match A.core a, B.core b with
    | Some ca, Some cb -> Some (ca, cb)
    | _, _ -> None

  let pp ppf (a, b) = Fmt.pf ppf "(%a, %a)" A.pp a B.pp b
end
