(** Frame-preserving updates, checked by enumeration.

    [a ⇝ B] holds when for every frame [f] compatible with [a], some [b ∈ B]
    is compatible with [f].  This is the soundness condition for ghost-state
    updates: no other thread's capabilities can be invalidated.  In Coq this
    is a lemma per update; here it is checked against a finite universe of
    frames, which is exhaustive for the finite instances our systems use. *)

module Make (M : Ra_intf.S) = struct
  let ok ~frames a bs =
    (* The empty frame is always a frame: a valid a must go somewhere. *)
    let no_frame = (not (M.valid a)) || List.exists M.valid bs in
    no_frame
    && List.for_all
         (fun f ->
           (not (M.valid (M.op a f))) || List.exists (fun b -> M.valid (M.op b f)) bs)
         frames

  let ok1 ~frames a b = ok ~frames a [ b ]

  (** Find a frame witnessing that an update is *not* frame-preserving:
      evidence used by tests that deliberately break the rules. *)
  let counterexample ~frames a bs =
    List.find_opt
      (fun f -> M.valid (M.op a f) && not (List.exists (fun b -> M.valid (M.op b f)) bs))
      frames
end
