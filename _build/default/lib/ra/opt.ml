(** Option camera: adds a unit to any camera, i.e. makes it unital.
    [None] is the unit; [Some a ⋅ Some b = Some (a ⋅ b)]. *)

module Make (M : Ra_intf.S) : sig
  include Ra_intf.UNITAL with type t = M.t option

  val included : t -> t -> bool
end = struct
  type t = M.t option

  let equal x y = Option.equal M.equal x y
  let valid = function None -> true | Some a -> M.valid a

  let op x y =
    match x, y with
    | None, z | z, None -> z
    | Some a, Some b -> Some (M.op a b)

  let core = function
    | None -> Some None
    | Some a -> (match M.core a with None -> Some None | Some c -> Some (Some c))

  let unit = None

  (* a ≼ b in the option camera: the unit is below everything; Some a ≼ Some b
     iff a = b or some c with a ⋅ c = b — we approximate inclusion by equality
     plus unit, which is exact for exclusive payloads (the only use here). *)
  let included x y =
    match x, y with
    | None, _ -> true
    | Some _, None -> false
    | Some a, Some b -> M.equal a b

  let pp ppf = function
    | None -> Fmt.string ppf "ε"
    | Some a -> M.pp ppf a
end
