lib/ra/auth.ml: Fmt Ra_intf
