lib/ra/excl.ml: Fmt Ra_intf
