lib/ra/opt.ml: Fmt Option Ra_intf
