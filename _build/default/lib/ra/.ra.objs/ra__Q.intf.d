lib/ra/q.mli: Fmt
