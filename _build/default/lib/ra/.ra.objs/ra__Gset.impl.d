lib/ra/gset.ml: Fmt Ra_intf Set
