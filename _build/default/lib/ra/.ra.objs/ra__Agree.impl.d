lib/ra/agree.ml: Fmt Ra_intf
