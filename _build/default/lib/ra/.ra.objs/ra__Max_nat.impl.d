lib/ra/max_nat.ml: Fmt Int
