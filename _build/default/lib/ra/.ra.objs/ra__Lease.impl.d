lib/ra/lease.ml: Fmt List Option Ra_intf
