lib/ra/fin_map.ml: Fmt List Map Ra_intf
