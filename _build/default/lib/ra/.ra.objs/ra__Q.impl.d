lib/ra/q.ml: Fmt Int
