lib/ra/prod.ml: Fmt Ra_intf
