lib/ra/frac.ml: Q
