lib/ra/fpu.ml: List Ra_intf
