lib/ra/sum.ml: Fmt Option Ra_intf
