lib/ra/ra_intf.ml: Fmt
