lib/ra/laws.ml: List Ra_intf
