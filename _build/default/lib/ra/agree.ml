(** Agreement camera Ag(A): freely duplicable knowledge that everyone must
    agree on — composing two different values is invalid.  Used for facts
    like "inode i is the file for (dir, name)". *)

module Make (A : Ra_intf.EQ) : sig
  include Ra_intf.S

  val ag : A.t -> t
  val bot : t
  val get : t -> A.t option
end = struct
  type t = Ag of A.t | Bot

  let ag a = Ag a
  let bot = Bot
  let get = function Ag a -> Some a | Bot -> None

  let equal x y =
    match x, y with
    | Ag a, Ag b -> A.equal a b
    | Bot, Bot -> true
    | (Ag _ | Bot), _ -> false

  let valid = function Ag _ -> true | Bot -> false

  let op x y =
    match x, y with
    | Ag a, Ag b when A.equal a b -> Ag a
    | (Ag _ | Bot), _ -> Bot

  (* Agreement is wholly persistent: every element is its own core. *)
  let core x = Some x

  let pp ppf = function
    | Ag a -> Fmt.pf ppf "Ag %a" A.pp a
    | Bot -> Fmt.string ppf "AgBot"
end
