(** Finite-map camera (Iris's gmap): pointwise composition; absent keys act
    as units.  The camera of heaps — a key is an address, the payload camera
    an exclusive or agreement cell. *)

module Make (K : Ra_intf.EQ) (M : Ra_intf.S) : sig
  include Ra_intf.UNITAL

  val singleton : K.t -> M.t -> t
  val of_list : (K.t * M.t) list -> t
  val to_list : t -> (K.t * M.t) list
  val find : K.t -> t -> M.t option
  val add : K.t -> M.t -> t -> t
  val remove : K.t -> t -> t
  val included : t -> t -> bool
end = struct
  module Km = Map.Make (struct
    type t = K.t

    let compare = K.compare
  end)

  type t = M.t Km.t

  let singleton = Km.singleton
  let of_list l = List.fold_left (fun m (k, v) -> Km.add k v m) Km.empty l
  let to_list = Km.bindings
  let find = Km.find_opt
  let add = Km.add
  let remove = Km.remove
  let equal = Km.equal M.equal
  let valid m = Km.for_all (fun _ v -> M.valid v) m

  let op a b =
    Km.union (fun _ x y -> Some (M.op x y)) a b

  (* The core keeps only keys whose payload has a core. *)
  let core m = Some (Km.filter_map (fun _ v -> M.core v) m)
  let unit = Km.empty

  (* a ≼ b pointwise, approximating payload inclusion by equality (exact for
     exclusive payloads). *)
  let included a b =
    Km.for_all
      (fun k v -> match Km.find_opt k b with Some w -> M.equal v w | None -> false)
      a

  let pp ppf m =
    let binding ppf (k, v) = Fmt.pf ppf "%a ↦ %a" K.pp k M.pp v in
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma binding) (Km.bindings m)
end
