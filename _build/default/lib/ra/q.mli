(** Arbitrary small rationals, normalized, for fractional permissions.

    Only the operations fractional cameras need: construction, addition,
    subtraction, comparison against 0 and 1.  Numerator/denominator are kept
    in native ints; fractions arising from permission splitting stay tiny. *)

type t

val make : int -> int -> t
(** [make num den] normalizes; raises [Invalid_argument] if [den <= 0]. *)

val zero : t
val one : t
val half : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val div2 : t -> t
(** Halve a fraction: the canonical permission split. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val leq : t -> t -> bool
val lt : t -> t -> bool
val pp : t Fmt.t
