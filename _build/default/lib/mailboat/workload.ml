(** The §9.3 workload: an equal mix of SMTP deliveries and POP3 pickups
    (pickup + delete + unlock), each request choosing one of [users] users
    uniformly at random, issued in a closed loop per core.

    [request] describes one logical request; [generate] produces a seeded,
    reproducible stream.  The same stream drives both the real servers (for
    functional tests, via {!perform}) and the discrete-event simulator (for
    the Figure 11 reproduction, via its cost model). *)

type request =
  | Smtp_deliver of { user : int; msg : string }
  | Pop3_session of { user : int }  (** pickup, delete everything, unlock *)

let pp_request ppf = function
  | Smtp_deliver { user; msg } ->
    Fmt.pf ppf "deliver(user%d, %dB)" user (String.length msg)
  | Pop3_session { user } -> Fmt.pf ppf "pickup(user%d)" user

(** The postal benchmark's message shape: small text messages; we use a
    fixed size so runs are reproducible. *)
let message_body = String.make 1024 'x'

let generate ~seed ~users ~n : request list
    =
  let rng = Random.State.make [| seed |] in
  List.init n (fun _ ->
      let user = Random.State.int rng users in
      if Random.State.bool rng then Smtp_deliver { user; msg = message_body }
      else Pop3_session { user })

(** Execute one request against a real server through the protocol layer
    (SMTP/POP3 codecs included, as in the paper's measurement setup). *)
let perform server (req : request) : unit =
  match req with
  | Smtp_deliver { user; msg } ->
    let responses =
      Smtp.run_script server
        [ "HELO bench"; "MAIL FROM:<bench@local>";
          Printf.sprintf "RCPT TO:<user%d@local>" user; "DATA"; msg; "."; "QUIT" ]
    in
    if not (List.exists (fun r -> String.length r >= 3 && String.sub r 0 3 = "250") responses)
    then failwith "smtp delivery failed"
  | Pop3_session { user } ->
    let s = Pop3.create server in
    ignore (Pop3.input s (Printf.sprintf "USER user%d" user));
    ignore (Pop3.input s "PASS x");
    (* delete every message currently in the mailbox, newest first *)
    let rec delete_all () =
      match Pop3.input s "DELE 1" with
      | [ r ] when String.length r >= 3 && String.sub r 0 3 = "+OK" -> delete_all ()
      | _ -> ()
    in
    delete_all ();
    ignore (Pop3.input s "QUIT")

(** Run a closed-loop worker: perform requests until the shared counter is
    exhausted; returns the number of requests this worker completed. *)
let closed_loop server ~requests ~next () =
  let completed = ref 0 in
  let n = Array.length requests in
  let rec go () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      perform server requests.(i);
      incr completed;
      go ()
    end
  in
  go ();
  !completed
