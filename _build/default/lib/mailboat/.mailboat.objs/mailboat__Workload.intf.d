lib/mailboat/workload.mli: Atomic Fmt Server
