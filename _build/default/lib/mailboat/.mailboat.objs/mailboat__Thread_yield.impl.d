lib/mailboat/thread_yield.ml: Domain
