lib/mailboat/workload.ml: Array Atomic Fmt List Pop3 Printf Random Smtp String
