lib/mailboat/core.mli: Disk Fmt Gfs Map Perennial_core Sched String Tslang
