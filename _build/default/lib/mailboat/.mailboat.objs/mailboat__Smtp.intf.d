lib/mailboat/smtp.mli: Server
