lib/mailboat/server.mli: Gfs Mutex Random
