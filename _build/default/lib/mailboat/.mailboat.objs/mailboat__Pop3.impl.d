lib/mailboat/pop3.ml: List Printf Server String
