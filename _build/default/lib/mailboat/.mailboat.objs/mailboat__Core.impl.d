lib/mailboat/core.ml: Core_ids Disk Fmt Fun Gfs List Map Perennial_core Printf Sched String Tslang
