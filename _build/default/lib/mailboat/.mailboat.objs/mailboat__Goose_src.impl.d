lib/mailboat/goose_src.ml:
