lib/mailboat/pop3.mli: Server
