lib/mailboat/server.ml: Array Core Gfs List Mutex Option Printf Random String Thread_yield
