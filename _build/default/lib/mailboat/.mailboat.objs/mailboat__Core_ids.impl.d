lib/mailboat/core_ids.ml:
