lib/mailboat/smtp.ml: Buffer List Server String
