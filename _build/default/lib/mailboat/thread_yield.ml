(* Cooperative yield used by spinning file locks.  Domain.cpu_relax is the
   OCaml 5 hint for busy-wait loops. *)
let yield () = Domain.cpu_relax ()
