(** The Mailboat mail server core (paper §8): deliver, pickup, delete over a
    Maildir-like layout, with crash recovery that cleans the spool.

    This module is the {e verified-core equivalent}: the specification as a
    transition system and the implementation as an atomic-step program over
    the pure {!Gfs.Fs} world, which the refinement checker explores
    exhaustively.  The runnable server over the mutable tmpfs is
    {!Server}.  Mechanisms (§8.2): pickup/delete take a per-user lock while
    delivery is lock-free; delivery spools under a random name and
    atomically links into the mailbox; recovery unspools. *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog
module SMap := Map.Make (String)

val spool : string
val user_dir : int -> string
val dirs : users:int -> string list

(** {1 Specification} *)

type state = string SMap.t SMap.t
(** user directory name -> message id -> contents *)

val id_universe : string list
(** The finite message-ID universe shared by the spec's nondeterministic
    allocator and the model of [machine.RandomUint64]. *)

val spec_init : users:int -> state
val spec : users:int -> state Spec.t

(** {1 World} *)

type world = { fs : Gfs.Fs.t; locks : Disk.Locks.t }

val init_world : ?durability:Gfs.Fs.durability -> users:int -> unit -> world
val crash_world : world -> world
val pp_world : world Fmt.t

(** {1 Implementation programs} *)

val chunk_size : int
(** Message I/O chunk size (the paper's 4 KB / 512 B, scaled down to keep
    exhaustive checking cheap). *)

val deliver_prog : int -> string -> (world, V.t) P.t
val deliver_fsync_prog : int -> string -> (world, V.t) P.t
(** The deferred-durability-correct delivery: fsync before the commit
    link.  Identical to {!deliver_prog} under the paper's sync model. *)

val pickup_prog : int -> (world, V.t) P.t
val delete_prog : int -> string -> (world, V.t) P.t
val unlock_prog : int -> (world, V.t) P.t
val recover_prog : (world, V.t) P.t

(** {1 Checker plumbing} *)

val deliver_call : int -> string -> Spec.call * (world, V.t) P.t
val deliver_fsync_call : int -> string -> Spec.call * (world, V.t) P.t
val pickup_call : int -> Spec.call * (world, V.t) P.t
val delete_call : int -> string -> Spec.call * (world, V.t) P.t
val unlock_call : int -> Spec.call * (world, V.t) P.t
val session_calls : int -> (Spec.call * (world, V.t) P.t) list

val checker_config :
  ?users:int ->
  ?max_crashes:int ->
  ?step_budget:int ->
  ?durability:Gfs.Fs.durability ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config

(** {1 Seeded bugs (§9.5)} *)

module Buggy : sig
  val pickup_infinite_loop : int -> (world, V.t) P.t
  (** The paper's §9.5 bug: the read offset never advances, so any message
      longer than one chunk loops forever. *)

  val deliver_unspooled : int -> string -> (world, V.t) P.t
  val deliver_call_unspooled : int -> string -> Spec.call * (world, V.t) P.t
  val pickup_unlocked : int -> (world, V.t) P.t
  val pickup_call_unlocked : int -> Spec.call * (world, V.t) P.t
  val recover_wrong_dir : users:int -> (world, V.t) P.t
end
