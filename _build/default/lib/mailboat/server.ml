(** Runnable mail servers over the mutable tmpfs — Mailboat and the two
    §9.3 baselines, GoMail and CMAIL.

    All three share the Maildir-like layout; they differ in exactly the
    mechanisms the paper credits for the performance gaps:

    - {b Mailboat}: in-memory per-user mutexes for pickup/delete, lock-free
      delivery, lookups relative to cached directory handles;
    - {b GoMail}: the unverified Go baseline — same structure but per-user
      *file locks* (create-if-absent lock files with spinning), costing
      extra file-system calls per lock operation;
    - {b CMAIL}: the verified-in-CSPEC baseline — file locks like GoMail
      plus the extracted-Haskell execution overhead, which the simulator
      accounts as a per-operation CPU multiplier (§9.3 attributes GoMail's
      34% single-core advantage over CMAIL to Go vs extracted Haskell).

    Functionally the three behave identically (the differences are
    performance-shaped); the discrete-event simulator [Mcsim] assigns each
    server kind its cost profile for the Figure 11 reproduction, and this
    module also really runs them (tests drive them from multiple domains).
*)

type kind = Mailboat_server | Gomail | Cmail

let kind_name = function
  | Mailboat_server -> "Mailboat"
  | Gomail -> "GoMail"
  | Cmail -> "CMAIL"

type t = {
  kind : kind;
  fs : Gfs.Tmpfs.t;
  users : int;
  user_mutexes : Mutex.t array;  (** Mailboat only *)
  rng : Random.State.t;
  rng_mutex : Mutex.t;
  (* operation counters, for tests and the simulator's cost calibration *)
  mutable fs_calls : int;
  mutable lock_ops : int;
}

let spool = Core.spool
let user_dir = Core.user_dir

let create ?(seed = 1) ~kind ~users () =
  {
    kind;
    fs = Gfs.Tmpfs.init (Core.dirs ~users);
    users;
    user_mutexes = Array.init users (fun _ -> Mutex.create ());
    rng = Random.State.make [| seed |];
    rng_mutex = Mutex.create ();
    fs_calls = 0;
    lock_ops = 0;
  }

let random_id t =
  Mutex.lock t.rng_mutex;
  let n = Random.State.bits t.rng in
  Mutex.unlock t.rng_mutex;
  string_of_int n

let count_fs t n = t.fs_calls <- t.fs_calls + n

(* --- locking strategies --- *)

let lock_file u = Printf.sprintf ".lock-%d" u

(** File locks (GoMail/CMAIL): spin on atomic create of a lock file.  Each
    acquire/release costs file-system calls — the paper's explanation for
    Mailboat's single-core advantage. *)
let rec file_lock_acquire t u =
  count_fs t 2 (* create attempt + close *);
  match Gfs.Tmpfs.create t.fs (user_dir u) (lock_file u) with
  | Some fd ->
    ignore (Gfs.Tmpfs.close t.fs fd);
    ()
  | None ->
    Thread_yield.yield ();
    file_lock_acquire t u

let file_lock_release t u =
  count_fs t 1;
  ignore (Gfs.Tmpfs.delete t.fs (user_dir u) (lock_file u))

let lock_user t u =
  t.lock_ops <- t.lock_ops + 1;
  match t.kind with
  | Mailboat_server -> Mutex.lock t.user_mutexes.(u)
  | Gomail | Cmail -> file_lock_acquire t u

let unlock_user t u =
  t.lock_ops <- t.lock_ops + 1;
  match t.kind with
  | Mailboat_server -> Mutex.unlock t.user_mutexes.(u)
  | Gomail | Cmail -> file_lock_release t u

(* --- operations (§8.1 API) --- *)

(** Deliver: spool, link, unspool; lock-free in all three servers. *)
let deliver t ~user msg =
  let rec create_tmp () =
    let name = "tmp" ^ random_id t in
    count_fs t 1;
    match Gfs.Tmpfs.create t.fs spool name with
    | Some fd -> (name, fd)
    | None -> create_tmp ()
  in
  let tmp_name, fd = create_tmp () in
  (* write in 4 KB chunks like the paper's implementation *)
  let chunk = 4096 in
  let len = String.length msg in
  let rec write off =
    if off < len then begin
      count_fs t 1;
      ignore (Gfs.Tmpfs.append t.fs fd (String.sub msg off (min chunk (len - off))));
      write (off + chunk)
    end
  in
  write 0;
  count_fs t 1;
  ignore (Gfs.Tmpfs.close t.fs fd);
  let rec link_loop () =
    let id = "m" ^ random_id t in
    count_fs t 1;
    if Gfs.Tmpfs.link t.fs ~src:(spool, tmp_name) ~dst:(user_dir user, id) then id
    else link_loop ()
  in
  let id = link_loop () in
  count_fs t 1;
  ignore (Gfs.Tmpfs.delete t.fs spool tmp_name);
  id

(** Pickup: take the user lock, list and read every message.  The lock
    stays held until {!unlock} (the POP3 session pattern). *)
let pickup t ~user =
  lock_user t user;
  count_fs t 1;
  let names = Gfs.Tmpfs.list_dir t.fs (user_dir user) in
  let names = List.filter (fun n -> not (String.length n > 0 && n.[0] = '.')) names in
  List.filter_map
    (fun name ->
      count_fs t 2 (* open + close *);
      match Gfs.Tmpfs.open_read t.fs (user_dir user) name with
      | None -> None
      | Some fd ->
        let size = match Gfs.Tmpfs.size t.fs fd with Some s -> s | None -> 0 in
        let rec read off acc =
          if off >= size then acc
          else begin
            count_fs t 1;
            match Gfs.Tmpfs.read_at t.fs fd off 4096 with
            | Some chunk when chunk <> "" -> read (off + String.length chunk) (acc ^ chunk)
            | Some _ | None -> acc
          end
        in
        let contents = read 0 "" in
        ignore (Gfs.Tmpfs.close t.fs fd);
        Some (name, contents))
    names

(** Delete a message; caller must hold the user lock (via pickup). *)
let delete t ~user id =
  count_fs t 1;
  ignore (Gfs.Tmpfs.delete t.fs (user_dir user) id)

let unlock t ~user = unlock_user t user

(** Crash recovery: clean the spool (and, for the file-lock servers, clear
    stale lock files — their equivalent of losing in-memory locks). *)
let recover t =
  List.iter
    (fun name ->
      count_fs t 1;
      ignore (Gfs.Tmpfs.delete t.fs spool name))
    (Gfs.Tmpfs.list_dir t.fs spool);
  match t.kind with
  | Mailboat_server -> ()
  | Gomail | Cmail ->
    for u = 0 to t.users - 1 do
      ignore (Gfs.Tmpfs.delete t.fs (user_dir u) (lock_file u))
    done

let crash t = Gfs.Tmpfs.crash t.fs

(** All messages of a user, without locking — test observation only. *)
let peek_mailbox t ~user =
  List.filter_map
    (fun name ->
      if String.length name > 0 && name.[0] = '.' then None
      else Option.map (fun c -> (name, c)) (Gfs.Tmpfs.read_file t.fs (user_dir user) name))
    (Gfs.Tmpfs.list_dir t.fs (user_dir user))
