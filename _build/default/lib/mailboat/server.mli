(** Runnable mail servers over the mutable tmpfs — Mailboat and the two
    §9.3 baselines, GoMail and CMAIL.

    All three share the Maildir-like layout and behave identically; they
    differ in the mechanisms the paper credits for the performance gaps
    (in-memory vs file locks, lookup style, execution engine), which the
    {!Mcsim} cost model turns into the Figure 11 curves. *)

type kind = Mailboat_server | Gomail | Cmail

val kind_name : kind -> string

type t = {
  kind : kind;
  fs : Gfs.Tmpfs.t;
  users : int;
  user_mutexes : Mutex.t array;  (** Mailboat's in-memory per-user locks *)
  rng : Random.State.t;
  rng_mutex : Mutex.t;
  mutable fs_calls : int;  (** operation counter, for tests and calibration *)
  mutable lock_ops : int;
}

val create : ?seed:int -> kind:kind -> users:int -> unit -> t

val deliver : t -> user:int -> string -> string
(** Spool, atomically link into the mailbox, unspool; lock-free (§8.2).
    Returns the allocated message ID. *)

val pickup : t -> user:int -> (string * string) list
(** Take the user lock and read the whole mailbox; the lock stays held
    until {!unlock} (the POP3 session pattern, §8.1). *)

val delete : t -> user:int -> string -> unit
(** Remove a message; the caller must hold the user lock via {!pickup} and
    pass an ID that {!pickup} returned (the paper's §9.2 assumption). *)

val unlock : t -> user:int -> unit

val recover : t -> unit
(** Crash recovery: clean the spool; the file-lock servers additionally
    clear stale lock files. *)

val crash : t -> unit
(** Simulate a process crash on the underlying tmpfs (drops descriptors). *)

val peek_mailbox : t -> user:int -> (string * string) list
(** All messages of a user, without locking — test observation only. *)
