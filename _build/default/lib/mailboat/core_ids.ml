(* The small message-ID universe shared by the specification's
   nondeterministic allocator and the implementation's model of
   machine.RandomUint64, keeping exhaustive exploration finite. *)
let ids = [ "m0"; "m1" ]
