(** The §9.3 workload: an equal mix of SMTP deliveries and POP3 pickup
    sessions (pickup + delete everything + unlock), each request choosing
    one of [users] users uniformly at random, issued in a closed loop per
    core.  The same seeded stream drives the real servers (functional
    tests) and the discrete-event simulator (Figure 11). *)

type request =
  | Smtp_deliver of { user : int; msg : string }
  | Pop3_session of { user : int }

val pp_request : request Fmt.t

val message_body : string
(** The fixed 1 KB message body, for reproducibility. *)

val generate : seed:int -> users:int -> n:int -> request list

val perform : Server.t -> request -> unit
(** Execute one request through the SMTP/POP3 codecs, as in the paper's
    measurement setup.  Raises [Failure] if the protocol dialogue fails. *)

val closed_loop :
  Server.t -> requests:request array -> next:int Atomic.t -> unit -> int
(** A closed-loop worker: perform requests from the shared counter until
    exhausted; returns how many this worker completed.  Run one per
    domain. *)
