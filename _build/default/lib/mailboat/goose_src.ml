(** Mailboat's implementation in Goose source (the Go subset of §6) — the same code shape as the paper's artifact, processed by our translator pipeline.  Generated from examples/goose/mailboat.go (the canonical file). *)

let source = {goo|
package mailboat

import (
	"filesys"
	"machine"
	"sync"
)

type Message struct {
	ID       string
	Contents string
}

const SpoolDir = "spool"

func userDir(user uint64) string {
	return "user" + machine.UInt64ToString(user)
}

// writeAll appends data to fd in small chunks (the paper writes 4 KB at a
// time; the model uses 2-byte chunks to keep exhaustive checking cheap).
func writeAll(fd uint64, data []byte) {
	var off uint64 = 0
	for off < len(data) {
		end := off + 2
		if end > len(data) {
			end = len(data)
		}
		filesys.Append(fd, data[off:end])
		off = end
	}
}

// readAll reads the whole file in 2-byte chunks (cf. the §9.5 bug: the
// original looped forever on messages longer than one chunk).
func readAll(fd uint64) string {
	contents := ""
	var off uint64 = 0
	for {
		chunk := filesys.ReadAt(fd, off, 2)
		contents = contents + string(chunk)
		off = off + len(chunk)
		if len(chunk) < 2 {
			break
		}
	}
	return contents
}

// createTmp spools the message under a fresh random name.
func createTmp(msg []byte) string {
	for {
		id := machine.RandomUint64()
		name := "tmp" + machine.UInt64ToString(id)
		fd, ok := filesys.Create(SpoolDir, name)
		if ok {
			writeAll(fd, msg)
			filesys.Close(fd)
			return name
		}
	}
}

// Deliver stores a message in the user's mailbox: spool, atomically link
// into the mailbox (the commit point), then unspool.  Lock-free.
func Deliver(user uint64, msg []byte) {
	tmpName := createTmp(msg)
	for {
		id := machine.RandomUint64()
		ok := filesys.Link(SpoolDir, tmpName, userDir(user), "m"+machine.UInt64ToString(id))
		if ok {
			break
		}
	}
	filesys.Delete(SpoolDir, tmpName)
}

// createTmpFsync is createTmp with an fsync before close: required for
// correctness under deferred durability (buffered writes), a no-op under
// the always-durable model.
func createTmpFsync(msg []byte) string {
	for {
		id := machine.RandomUint64()
		name := "tmp" + machine.UInt64ToString(id)
		fd, ok := filesys.Create(SpoolDir, name)
		if ok {
			writeAll(fd, msg)
			filesys.Fsync(fd)
			filesys.Close(fd)
			return name
		}
	}
}

// DeliverFsync is Deliver with the spooled contents flushed before the
// commit link.
func DeliverFsync(user uint64, msg []byte) {
	tmpName := createTmpFsync(msg)
	for {
		id := machine.RandomUint64()
		ok := filesys.Link(SpoolDir, tmpName, userDir(user), "m"+machine.UInt64ToString(id))
		if ok {
			break
		}
	}
	filesys.Delete(SpoolDir, tmpName)
}

// Pickup lists and reads the user's mailbox; it leaves the per-user lock
// held so the caller may Delete, until Unlock.
func Pickup(user uint64) []Message {
	sync.Lock(user)
	names := filesys.List(userDir(user))
	var messages []Message = []Message{}
	for _, name := range names {
		fd, ok := filesys.Open(userDir(user), name)
		if ok {
			contents := readAll(fd)
			filesys.Close(fd)
			messages = append(messages, Message{ID: name, Contents: contents})
		}
	}
	return messages
}

// Delete removes a message; the caller must hold the user lock (via
// Pickup) and pass an ID that Pickup returned.
func Delete(user uint64, id string) {
	filesys.Delete(userDir(user), id)
}

// Unlock ends a Pickup session.
func Unlock(user uint64) {
	sync.Unlock(user)
}

// Recover cleans the spool after a crash; delivered mail needs no repair.
func Recover() {
	names := filesys.List(SpoolDir)
	for _, name := range names {
		filesys.Delete(SpoolDir, name)
	}
}
|goo}
