(** The Mailboat mail server core (paper §8): deliver, pickup, delete over a
    Maildir-like layout, with crash recovery that cleans the spool.

    This module is the *verified-core equivalent*: the specification as a
    transition system, and the implementation as an atomic-step program over
    the pure {!Gfs.Fs} world, which the refinement checker explores
    exhaustively (interleavings × crash points).  The runnable server over
    the mutable tmpfs is {!Server}.

    Key mechanisms (§8.2):
    - Pickup/Delete take a per-user lock; delivery is lock-free;
    - Deliver spools the message under a random name, then atomically links
      it into the mailbox and deletes the spool entry (shadow-copy pattern);
    - random-name allocation retries on collision (create-if-absent);
    - Recover deletes everything in the spool. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module SMap = Map.Make (String)

let spool = "spool"
let user_dir u = Printf.sprintf "user%d" u
let dirs ~users = spool :: List.init users user_dir

(* ------------------------------------------------------------------ *)
(* Specification                                                        *)
(* ------------------------------------------------------------------ *)

type state = string SMap.t SMap.t
(** user directory name -> message id -> contents *)

(** Message IDs the spec (and the model of the random generator) draws
    from; small to keep exhaustive checking tractable. *)
let id_universe = Core_ids.ids

let spec_init ~users : state =
  List.fold_left (fun st u -> SMap.add (user_dir u) SMap.empty st) SMap.empty
    (List.init users Fun.id)

let spec ~users : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "mailboat";
    init = spec_init ~users;
    compare_state = SMap.compare (SMap.compare String.compare);
    pp_state =
      (fun ppf st ->
        let mailbox ppf (u, msgs) =
          Fmt.pf ppf "%s:{%a}" u
            (Fmt.list ~sep:Fmt.comma (fun ppf (i, c) -> Fmt.pf ppf "%s=%S" i c))
            (SMap.bindings msgs)
        in
        Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.sp mailbox) (SMap.bindings st));
    step =
      (fun op args ->
        match op, args with
        | "deliver", [ V.Int u; V.Str msg ] ->
          let* st = T.reads in
          (match SMap.find_opt (user_dir u) st with
          | None -> T.undefined
          | Some mbox ->
            (* the spec allocates any unused ID nondeterministically *)
            let fresh = List.filter (fun id -> not (SMap.mem id mbox)) id_universe in
            let* id = T.choose fresh in
            let* () =
              T.modify (SMap.add (user_dir u) (SMap.add id msg mbox))
            in
            T.ret V.unit)
        | "pickup", [ V.Int u ] ->
          let* st = T.reads in
          (match SMap.find_opt (user_dir u) st with
          | None -> T.undefined
          | Some mbox ->
            T.ret
              (V.list
                 (List.map (fun (id, c) -> V.pair (V.str id) (V.str c)) (SMap.bindings mbox))))
        | "delete", [ V.Int u; V.Str id ] ->
          let* st = T.reads in
          (match SMap.find_opt (user_dir u) st with
          | None -> T.undefined
          | Some mbox ->
            if not (SMap.mem id mbox) then
              (* the paper's contract: only IDs returned by Pickup *)
              T.undefined
            else
              let* () = T.modify (SMap.add (user_dir u) (SMap.remove id mbox)) in
              T.ret V.unit)
        | "unlock", [ V.Int _ ] -> T.ret V.unit
        | _ -> invalid_arg "mailboat spec: unknown op");
    crash = T.ret () (* delivered mail survives crashes *);
  }

(* ------------------------------------------------------------------ *)
(* World                                                                *)
(* ------------------------------------------------------------------ *)

type world = { fs : Gfs.Fs.t; locks : Disk.Locks.t }

let init_world ?(durability = `Sync) ~users () =
  { fs = Gfs.Fs.init ~durability (dirs ~users); locks = Disk.Locks.empty }
let crash_world w = { fs = Gfs.Fs.crash w.fs; locks = Disk.Locks.empty }

let pp_world ppf w = Fmt.pf ppf "%a %a" Gfs.Fs.pp w.fs Disk.Locks.pp w.locks

let get_fs w = w.fs
let set_fs w fs = { w with fs }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let lock u = Disk.Locks.acquire ~get:get_locks ~set:set_locks u
let unlock_l u = Disk.Locks.release ~get:get_locks ~set:set_locks u

let fs_create dir name = Gfs.Ops.create ~get:get_fs ~set:set_fs dir name
let fs_open dir name = Gfs.Ops.open_read ~get:get_fs ~set:set_fs dir name
let fs_append fd data = Gfs.Ops.append ~get:get_fs ~set:set_fs fd data
let fs_read_at fd off len = Gfs.Ops.read_at ~get:get_fs fd off len
let fs_close fd = Gfs.Ops.close ~get:get_fs ~set:set_fs fd
let fs_fsync fd = Gfs.Ops.fsync ~get:get_fs ~set:set_fs fd
let fs_link ~src ~dst = Gfs.Ops.link ~get:get_fs ~set:set_fs ~src ~dst
let fs_delete dir name = Gfs.Ops.delete ~get:get_fs ~set:set_fs dir name
let fs_list dir = Gfs.Ops.list_dir ~get:get_fs dir

(** Model of [machine.RandomUint64]: a nondeterministic draw.  Taking it
    without replacement keeps exhaustive exploration finite while still
    covering every collision scenario. *)
let random_id candidates : ('w, V.t) P.t =
  P.atomic "random_id" (fun w -> P.Steps (List.map (fun id -> (w, V.str id)) candidates))

(* ------------------------------------------------------------------ *)
(* Implementation                                                       *)
(* ------------------------------------------------------------------ *)

open P.Syntax

(** Message chunk size for writes and reads (the paper's 4 KB writes and
    the §9.5 512-byte read loop, scaled down to keep checking cheap). *)
let chunk_size = 2

let rec write_chunks fd msg : (world, unit) P.t =
  if String.length msg = 0 then P.return ()
  else
    let n = min chunk_size (String.length msg) in
    let* () = fs_append fd (String.sub msg 0 n) in
    write_chunks fd (String.sub msg n (String.length msg - n))

let read_all fd : (world, V.t) P.t =
  let rec go off acc =
    let* chunk = fs_read_at fd off chunk_size in
    let data = V.get_str chunk in
    if String.length data < chunk_size then P.return (V.str (acc ^ data))
    else go (off + String.length data) (acc ^ data)
  in
  go 0 ""

(** Allocate-and-create a fresh file name in [dir] by drawing random IDs
    until [create] succeeds (create is atomic create-if-absent).

    The unbounded retry loop of the real code is modeled as rounds of
    draws-without-replacement over the finite ID universe, with the pool
    reset between rounds: names can be *freed* concurrently (a finished
    delivery unspools its temporary file), so a name that failed once may
    succeed later.  The round bound keeps exhaustive exploration finite;
    exceeding it means the instance genuinely overcommits the namespace. *)
let alloc_create dir prefix universe : (world, V.t) P.t =
  let rec round candidates rounds_left =
    match candidates with
    | [] ->
      if rounds_left > 0 then round universe (rounds_left - 1)
      else P.ub "message-ID space exhausted"
    | _ ->
      let* id = random_id candidates in
      let name = prefix ^ V.get_str id in
      let* r = fs_create dir name in
      let fd, ok = V.get_pair r in
      if V.get_bool ok then P.return (V.pair (V.str name) fd)
      else round (List.filter (fun c -> c <> V.get_str id) candidates) rounds_left
  in
  round universe 2

(** Deliver: spool under a fresh name, link into the mailbox (the atomic
    commit point), then unspool.  No locks (§8.2 Pickup/Deliver).  With
    [fsync] the spooled contents are flushed before the link — required for
    correctness under deferred durability, a no-op under the paper's
    always-durable model. *)
let deliver_gen ~fsync u msg : (world, V.t) P.t =
  let* spooled = alloc_create spool "tmp-" Core_ids.ids in
  let tmp_name, fd = V.get_pair spooled in
  let tmp_name = V.get_str tmp_name in
  let* () = write_chunks (V.get_int fd) msg in
  let* () = if fsync then fs_fsync (V.get_int fd) else P.return () in
  let* () = fs_close (V.get_int fd) in
  (* mailbox names are only ever *added* while we retry (deletes need the
     user lock, but a concurrent delete session can also free one), so the
     same round-based retry applies *)
  let link_loop universe =
    let rec round candidates rounds_left =
      match candidates with
      | [] ->
        if rounds_left > 0 then round universe (rounds_left - 1)
        else P.ub "mailbox ID space exhausted"
      | _ ->
        let* id = random_id candidates in
        let id = V.get_str id in
        let* ok = fs_link ~src:(spool, tmp_name) ~dst:(user_dir u, id) in
        if V.get_bool ok then P.return ()
        else round (List.filter (fun c -> c <> id) candidates) rounds_left
    in
    round universe 2
  in
  let* () = link_loop Core_ids.ids in
  let* _ = fs_delete spool tmp_name in
  P.return V.unit

let deliver_prog u msg = deliver_gen ~fsync:false u msg

(** The deferred-durability-correct delivery: fsync before the commit
    point. *)
let deliver_fsync_prog u msg = deliver_gen ~fsync:true u msg

(** Pickup: under the user lock, list the mailbox and read every message. *)
let pickup_prog u : (world, V.t) P.t =
  let* () = lock u in
  let* names = fs_list (user_dir u) in
  let rec read_each acc = function
    | [] -> P.return (V.list (List.rev acc))
    | name :: rest ->
      let name = V.get_str name in
      let* r = fs_open (user_dir u) name in
      let fd, ok = V.get_pair r in
      if not (V.get_bool ok) then P.ub ("pickup: mailbox entry vanished: " ^ name)
      else
        let* contents = read_all (V.get_int fd) in
        let* () = fs_close (V.get_int fd) in
        read_each (V.pair (V.str name) contents :: acc) rest
  in
  read_each [] (V.get_list names)

(** Delete: requires the user lock to be held (taken by Pickup). *)
let delete_prog u id : (world, V.t) P.t =
  let* ok = fs_delete (user_dir u) id in
  if V.get_bool ok then P.return V.unit else P.ub ("delete of unknown message " ^ id)

let unlock_prog u : (world, V.t) P.t =
  let* () = unlock_l u in
  P.return V.unit

(** Recover: unspool everything (§8.2: frees space; no helping needed). *)
let recover_prog : (world, V.t) P.t =
  let* names = fs_list spool in
  let rec del = function
    | [] -> P.return V.unit
    | name :: rest ->
      let* _ = fs_delete spool (V.get_str name) in
      del rest
  in
  del (V.get_list names)

(* ------------------------------------------------------------------ *)
(* Calls and checker configuration                                      *)
(* ------------------------------------------------------------------ *)

let deliver_call u msg = (Spec.call "deliver" [ V.int u; V.str msg ], deliver_prog u msg)

let deliver_fsync_call u msg =
  (Spec.call "deliver" [ V.int u; V.str msg ], deliver_fsync_prog u msg)
let pickup_call u = (Spec.call "pickup" [ V.int u ], pickup_prog u)
let delete_call u id = (Spec.call "delete" [ V.int u; V.str id ], delete_prog u id)
let unlock_call u = (Spec.call "unlock" [ V.int u ], unlock_prog u)

(** A pickup-and-unlock session, the common probe. *)
let session_calls u = [ pickup_call u; unlock_call u ]

let checker_config ?(users = 1) ?(max_crashes = 1) ?(step_budget = 20_000_000)
    ?(durability = `Sync) threads : (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:(spec ~users)
    ~init_world:(init_world ~durability ~users ())
    ~crash_world ~pp_world ~threads ~recovery:recover_prog
    ~post:(List.concat_map session_calls (List.init users Fun.id))
    ~max_crashes ~step_budget ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs (§9.5)                                                   *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** The paper's §9.5 bug: a message larger than one chunk makes Pickup
      loop forever (the offset never advances). *)
  let pickup_infinite_loop u : (world, V.t) P.t =
    let* () = lock u in
    let* names = fs_list (user_dir u) in
    let rec read_each acc = function
      | [] -> P.return (V.list (List.rev acc))
      | name :: rest ->
        let name = V.get_str name in
        let* r = fs_open (user_dir u) name in
        let fd, _ok = V.get_pair r in
        let rec read_loop acc_data =
          let* chunk = fs_read_at (V.get_int fd) 0 chunk_size in
          (* bug: always reads offset 0 *)
          let data = V.get_str chunk in
          if String.length data < chunk_size then P.return (acc_data ^ data)
          else read_loop (acc_data ^ data)
        in
        let* contents = read_loop "" in
        let* () = fs_close (V.get_int fd) in
        read_each (V.pair (V.str name) (V.str contents) :: acc) rest
    in
    read_each [] (V.get_list names)

  (** Deliver without spooling: writes chunks directly into the mailbox, so
      concurrent pickups (or crashes) observe partial messages. *)
  let deliver_unspooled u msg : (world, V.t) P.t =
    let* r = alloc_create (user_dir u) "" Core_ids.ids in
    let _, fd = V.get_pair r in
    let* () = write_chunks (V.get_int fd) msg in
    let* () = fs_close (V.get_int fd) in
    P.return V.unit

  let deliver_call_unspooled u msg =
    (Spec.call "deliver" [ V.int u; V.str msg ], deliver_unspooled u msg)

  (** Pickup without taking the user lock: races with Delete. *)
  let pickup_unlocked u : (world, V.t) P.t =
    let* names = fs_list (user_dir u) in
    let rec read_each acc = function
      | [] -> P.return (V.list (List.rev acc))
      | name :: rest ->
        let name = V.get_str name in
        let* r = fs_open (user_dir u) name in
        let fd, ok = V.get_pair r in
        if not (V.get_bool ok) then P.ub ("pickup raced with delete on " ^ name)
        else
          let* contents = read_all (V.get_int fd) in
          let* () = fs_close (V.get_int fd) in
          read_each (V.pair (V.str name) contents :: acc) rest
    in
    read_each [] (V.get_list names)

  let pickup_call_unlocked u = (Spec.call "pickup" [ V.int u ], pickup_unlocked u)

  (** Recovery that deletes the *mailboxes* instead of the spool. *)
  let recover_wrong_dir ~users : (world, V.t) P.t =
    let rec per_user u =
      if u >= users then P.return V.unit
      else
        let* names = fs_list (user_dir u) in
        let rec del = function
          | [] -> per_user (u + 1)
          | name :: rest ->
            let* _ = fs_delete (user_dir u) (V.get_str name) in
            del rest
        in
        del (V.get_list names)
    in
    per_user 0
end
