(** A mutable, thread-safe in-memory file system with the same semantics as
    {!Fs} — the "tmpfs" the running mail servers operate on (§9.3 measures
    on Linux tmpfs to keep the disk out of the picture).

    A single mutex serializes operations, matching the paper's model of
    every file-system call being atomic; scalability is measured on the
    discrete-event simulator, not here. *)

type t

val init : string list -> t
(** Fixed directory layout, as {!Fs.init}; always [`Sync] durability. *)

val crash : t -> unit
(** Simulate a process crash: callers' descriptors dangle. *)

val snapshot : t -> Fs.t
(** The current pure state, for assertions. *)

val create : t -> string -> string -> int option
val open_read : t -> string -> string -> int option
val append : t -> int -> string -> bool
val read_at : t -> int -> int -> int -> string option
val size : t -> int -> int option
val close : t -> int -> bool
val link : t -> src:string * string -> dst:string * string -> bool
val delete : t -> string -> string -> bool
val list_dir : t -> string -> string list
val read_file : t -> string -> string -> string option
