(** A mutable, thread-safe in-memory file system with the same API surface
    as {!Fs} — the "tmpfs" the running mail servers are benchmarked on
    (§9.3 runs on Linux tmpfs to keep the disk out of the picture).

    A single mutex serializes metadata operations, matching the paper's
    model of every file-system call being atomic.  The servers' scalability
    is measured on the discrete-event simulator (see [Mcsim]); this
    structure is for functional execution with real threads/domains. *)

type t = { mutable fs : Fs.t; lock : Mutex.t }

let init dirs = { fs = Fs.init dirs; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f ())

(** Simulate a crash: drop descriptors (callers' fds dangle, as after a real
    process restart). *)
let crash t = with_lock t (fun () -> t.fs <- Fs.crash t.fs)

let snapshot t = with_lock t (fun () -> t.fs)

let create t dir name =
  with_lock t (fun () ->
      match Fs.create t.fs dir name with
      | Some (fs, fd) ->
        t.fs <- fs;
        Some fd
      | None -> None)

let open_read t dir name =
  with_lock t (fun () ->
      match Fs.open_read t.fs dir name with
      | Some (fs, fd) ->
        t.fs <- fs;
        Some fd
      | None -> None)

let append t fd data =
  with_lock t (fun () ->
      match Fs.append t.fs fd data with
      | Some fs ->
        t.fs <- fs;
        true
      | None -> false)

let read_at t fd off len = with_lock t (fun () -> Fs.read_at t.fs fd off len)
let size t fd = with_lock t (fun () -> Fs.size t.fs fd)

let close t fd =
  with_lock t (fun () ->
      match Fs.close t.fs fd with
      | Some fs ->
        t.fs <- fs;
        true
      | None -> false)

let link t ~src ~dst =
  with_lock t (fun () ->
      match Fs.link t.fs ~src ~dst with
      | Some fs ->
        t.fs <- fs;
        true
      | None -> false)

let delete t dir name =
  with_lock t (fun () ->
      match Fs.delete t.fs dir name with
      | Some fs ->
        t.fs <- fs;
        true
      | None -> false)

let list_dir t dir = with_lock t (fun () -> Fs.list_dir t.fs dir)
let read_file t dir name = with_lock t (fun () -> Fs.read_file t.fs dir name)
