(** Program-level (atomic-step) file-system operations, lens-composed into a
    larger world — the runnable counterpart of the Goose file-system API.
    Every operation is one atomic step (§6.2).  Results are encoded as
    {!Tslang.Value.t}: descriptors as [Int], ok-flags as [Bool], data as
    [Str]. *)

module V = Tslang.Value
module P = Sched.Prog

let create ~get ~set dir name : ('w, V.t) P.t =
  P.det
    (Printf.sprintf "create(%s/%s)" dir name)
    (fun w ->
      match Fs.create (get w) dir name with
      | Some (fs, fd) -> (set w fs, V.pair (V.int fd) (V.bool true))
      | None -> (w, V.pair (V.int (-1)) (V.bool false)))

let open_read ~get ~set dir name : ('w, V.t) P.t =
  P.det
    (Printf.sprintf "open(%s/%s)" dir name)
    (fun w ->
      match Fs.open_read (get w) dir name with
      | Some (fs, fd) -> (set w fs, V.pair (V.int fd) (V.bool true))
      | None -> (w, V.pair (V.int (-1)) (V.bool false)))

let append ~get ~set fd data : ('w, unit) P.t =
  P.bind
    (P.atomic
       (Printf.sprintf "append(fd%d,%dB)" fd (String.length data))
       (fun w ->
         match Fs.append (get w) fd data with
         | Some fs -> P.Steps [ (set w fs, V.unit) ]
         | None -> P.Ub (Printf.sprintf "append to invalid descriptor %d" fd)))
    (fun _ -> P.return ())

(** [fsync]: flush a descriptor's buffered writes to durable storage
    (deferred-durability mode; a no-op under the paper's sync model). *)
let fsync ~get ~set fd : ('w, unit) P.t =
  P.bind
    (P.atomic
       (Printf.sprintf "fsync(fd%d)" fd)
       (fun w ->
         match Fs.fsync (get w) fd with
         | Some fs -> P.Steps [ (set w fs, V.unit) ]
         | None -> P.Ub (Printf.sprintf "fsync of invalid descriptor %d" fd)))
    (fun _ -> P.return ())

let read_at ~get fd off len : ('w, V.t) P.t =
  P.atomic
    (Printf.sprintf "readAt(fd%d,%d,%d)" fd off len)
    (fun w ->
      match Fs.read_at (get w) fd off len with
      | Some data -> P.Steps [ (w, V.str data) ]
      | None -> P.Ub (Printf.sprintf "read from invalid descriptor %d" fd))

let size ~get fd : ('w, V.t) P.t =
  P.atomic
    (Printf.sprintf "size(fd%d)" fd)
    (fun w ->
      match Fs.size (get w) fd with
      | Some n -> P.Steps [ (w, V.int n) ]
      | None -> P.Ub (Printf.sprintf "size of invalid descriptor %d" fd))

let close ~get ~set fd : ('w, unit) P.t =
  P.bind
    (P.atomic
       (Printf.sprintf "close(fd%d)" fd)
       (fun w ->
         match Fs.close (get w) fd with
         | Some fs -> P.Steps [ (set w fs, V.unit) ]
         | None -> P.Ub (Printf.sprintf "close of invalid descriptor %d" fd)))
    (fun _ -> P.return ())

let link ~get ~set ~src ~dst : ('w, V.t) P.t =
  P.det
    (Printf.sprintf "link(%s/%s -> %s/%s)" (fst src) (snd src) (fst dst) (snd dst))
    (fun w ->
      match Fs.link (get w) ~src ~dst with
      | Some fs -> (set w fs, V.bool true)
      | None -> (w, V.bool false))

let delete ~get ~set dir name : ('w, V.t) P.t =
  P.det
    (Printf.sprintf "delete(%s/%s)" dir name)
    (fun w ->
      match Fs.delete (get w) dir name with
      | Some fs -> (set w fs, V.bool true)
      | None -> (w, V.bool false))

let list_dir ~get dir : ('w, V.t) P.t =
  P.read (Printf.sprintf "list(%s)" dir) (fun w ->
      V.list (List.map V.str (Fs.list_dir (get w) dir)))
