(** Program-level (atomic-step) file-system operations, lens-composed into a
    larger world — the runnable counterpart of the Goose file-system API
    (§6.2).  Every operation is one atomic step.  Results are encoded as
    {!Tslang.Value.t}: descriptors as [Int], ok-flags as [Bool], data as
    [Str], (fd, ok) results as [Pair].

    Misuse of descriptors (stale after a crash, read-only for append) is
    undefined behaviour, matching the semantics of dangling references. *)

module V := Tslang.Value

val create :
  get:('w -> Fs.t) -> set:('w -> Fs.t -> 'w) -> string -> string -> ('w, V.t) Sched.Prog.t
(** Atomic create-if-absent; returns [(fd, ok)]. *)

val open_read :
  get:('w -> Fs.t) -> set:('w -> Fs.t -> 'w) -> string -> string -> ('w, V.t) Sched.Prog.t
(** Returns [(fd, ok)]. *)

val append :
  get:('w -> Fs.t) -> set:('w -> Fs.t -> 'w) -> int -> string -> ('w, unit) Sched.Prog.t

val fsync :
  get:('w -> Fs.t) -> set:('w -> Fs.t -> 'w) -> int -> ('w, unit) Sched.Prog.t
(** Flush buffered writes (deferred-durability mode; no-op under [`Sync]). *)

val read_at : get:('w -> Fs.t) -> int -> int -> int -> ('w, V.t) Sched.Prog.t
val size : get:('w -> Fs.t) -> int -> ('w, V.t) Sched.Prog.t
val close : get:('w -> Fs.t) -> set:('w -> Fs.t -> 'w) -> int -> ('w, unit) Sched.Prog.t

val link :
  get:('w -> Fs.t) ->
  set:('w -> Fs.t -> 'w) ->
  src:string * string ->
  dst:string * string ->
  ('w, V.t) Sched.Prog.t
(** Returns an ok flag; the Mailboat commit point. *)

val delete :
  get:('w -> Fs.t) -> set:('w -> Fs.t -> 'w) -> string -> string -> ('w, V.t) Sched.Prog.t

val list_dir : get:('w -> Fs.t) -> string -> ('w, V.t) Sched.Prog.t
(** Returns the sorted name list. *)
