lib/gfs/tmpfs.ml: Fs Fun Mutex
