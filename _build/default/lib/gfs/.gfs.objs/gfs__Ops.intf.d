lib/gfs/ops.mli: Fs Sched Tslang
