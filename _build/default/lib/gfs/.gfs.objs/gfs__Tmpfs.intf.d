lib/gfs/tmpfs.mli: Fs
