lib/gfs/fs.mli: Fmt
