lib/gfs/ops.ml: Fs List Printf Sched String Tslang
