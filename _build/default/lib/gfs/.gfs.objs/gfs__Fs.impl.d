lib/gfs/fs.ml: Fmt Int List Map Stdlib String
