(** Shadow copy (§9.1): atomic update of a pair of disk blocks by filling an
    inactive area and atomically flipping a pointer block.  A crash before
    the flip leaves the old pair visible; no recovery work is needed.

    Disk layout (5 blocks): area A at 0-1, area B at 2-3, pointer at 4. *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog

val disk_size : int
val ptr_addr : int
val area_base : string -> int
val other_area : string -> string

(** {1 Specification: an atomic pair} *)

type state = Disk.Block.t * Disk.Block.t

val spec : state Spec.t

(** {1 World and implementation} *)

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

val init_world : unit -> world
val crash_world : world -> world
val pp_world : world Fmt.t

val read_prog : (world, V.t) P.t
val write_prog : V.t -> V.t -> (world, V.t) P.t

val recover_prog : (world, V.t) P.t
(** A no-op: an unflipped shadow area is invisible. *)

(** {1 Checker plumbing} *)

val read_call : Spec.call * (world, V.t) P.t
val write_call : V.t -> V.t -> Spec.call * (world, V.t) P.t

val checker_config :
  ?max_crashes:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config

(** {1 Seeded bugs} *)

module Buggy : sig
  val write_in_place : V.t -> V.t -> (world, V.t) P.t
  val write_call_in_place : V.t -> V.t -> Spec.call * (world, V.t) P.t
  val write_flip_first : V.t -> V.t -> (world, V.t) P.t
  val write_call_flip_first : V.t -> V.t -> Spec.call * (world, V.t) P.t
end
