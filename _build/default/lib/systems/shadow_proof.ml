(** The Perennial proof of the shadow-copy system, as checkable outlines.

    The crash invariant has one disjunct per active area: the pointer block
    holds ["A"] (resp. ["B"]) and the abstract pair equals that area's
    blocks; the other area is unconstrained — that is what makes filling
    the shadow crash-safe without any recovery work.

    The write outline reads the pointer, case-splits on its value (which
    cuts the wrong invariant disjunct by constant disagreement), fills the
    shadow area one block per invariant opening, and simulates the
    operation at the pointer flip — the commit point.  Recovery is a no-op
    up to lease synthesis and the spec crash step: the paper's "if the
    system crashes, the shadow copy is invisible". *)

module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module O = Perennial_core.Outline

let l_ptr = "ptr"
let l_a0 = "a0"
let l_a1 = "a1"
let l_b0 = "b0"
let l_b1 = "b1"
let c_p0 = "p0"
let c_p1 = "p1"
let s_a = Sv.str "A"
let s_b = Sv.str "B"

let pair_read_op : O.sym_op =
  {
    O.op_name = "pair_read";
    sym_apply =
      (fun ~lookup args ->
        match args with
        | [] -> (
          match lookup c_p0, lookup c_p1 with
          | Some a, Some b -> Ok ([], Sv.pair a b)
          | _ -> Error "abstract pair not at hand")
        | _ -> Error "pair_read takes no arguments");
  }

let pair_write_op : O.sym_op =
  {
    O.op_name = "pair_write";
    sym_apply =
      (fun ~lookup:_ args ->
        match args with
        | [ v1; v2 ] -> Ok ([ (c_p0, v1); (c_p1, v2) ], Sv.unit)
        | _ -> Error "pair_write expects two arguments");
  }

let lock_inv : A.t =
  [
    A.heap
      [ A.lease l_ptr (Sv.var "p"); A.lease l_a0 (Sv.var "w"); A.lease l_a1 (Sv.var "x");
        A.lease l_b0 (Sv.var "y"); A.lease l_b1 (Sv.var "z") ];
  ]

let crash_inv : A.t =
  let area ptr_val active0 active1 =
    A.heap
      [ A.master l_ptr ptr_val;
        A.master l_a0 (Sv.var "a0v"); A.master l_a1 (Sv.var "a1v");
        A.master l_b0 (Sv.var "b0v"); A.master l_b1 (Sv.var "b1v");
        A.spec_cell c_p0 active0; A.spec_cell c_p1 active1 ]
  in
  [ area s_a (Sv.var "a0v") (Sv.var "a1v"); area s_b (Sv.var "b0v") (Sv.var "b1v") ]

let cinv = "shadow"
let the_lock = 0

let system : O.system =
  {
    O.sys_name = "shadow-copy";
    ops = [ pair_read_op; pair_write_op ];
    crash_cells = (fun ~lookup:_ -> []);
    lock_invs = [ (the_lock, lock_inv) ];
    crash_invs = [ (cinv, crash_inv) ];
  }

let read_outline : O.op_outline =
  {
    O.o_op = "pair_read";
    o_args = [];
    o_ret = Sv.pair (Sv.var "r0") (Sv.var "r1");
    o_body =
      [
        O.Acquire the_lock;
        O.Read_durable { loc = l_ptr; bind = "p" };
        O.Case_eq (Sv.var "p", s_a);
        (* both cases read "their" area; under the case split exactly one
           alternative survives the invariant opening *)
        O.Choice
          [
            [ O.Read_durable { loc = l_a0; bind = "r0" };
              O.Read_durable { loc = l_a1; bind = "r1" };
              O.Open_inv
                { name = cinv;
                  body = [ O.Simulate { op = "pair_read"; args = []; bind_ret = "r" } ] };
              (* the values read must be the abstract pair — fails in the
                 alternative that read the inactive area *)
              O.Assert_eq (Sv.var "r", Sv.pair (Sv.var "r0") (Sv.var "r1")) ];
            [ O.Read_durable { loc = l_b0; bind = "r0" };
              O.Read_durable { loc = l_b1; bind = "r1" };
              O.Open_inv
                { name = cinv;
                  body = [ O.Simulate { op = "pair_read"; args = []; bind_ret = "r" } ] };
              O.Assert_eq (Sv.var "r", Sv.pair (Sv.var "r0") (Sv.var "r1")) ];
          ];
        O.Release the_lock;
      ];
  }

(* Fill the named shadow area, then flip the pointer (the commit point,
   where the operation simulates). *)
let write_path shadow0 shadow1 new_ptr : O.cmd list =
  [
    O.Open_inv { name = cinv; body = [ O.Write_durable { loc = shadow0; value = Sv.var "v1" } ] };
    O.Open_inv { name = cinv; body = [ O.Write_durable { loc = shadow1; value = Sv.var "v2" } ] };
    O.Open_inv
      {
        name = cinv;
        body =
          [
            O.Write_durable { loc = l_ptr; value = new_ptr };
            O.Simulate
              { op = "pair_write"; args = [ Sv.var "v1"; Sv.var "v2" ]; bind_ret = "r" };
          ];
      };
  ]

let write_outline : O.op_outline =
  {
    O.o_op = "pair_write";
    o_args = [ Sv.var "v1"; Sv.var "v2" ];
    o_ret = Sv.unit;
    o_body =
      [
        O.Acquire the_lock;
        O.Read_durable { loc = l_ptr; bind = "p" };
        O.Case_eq (Sv.var "p", s_a);
        O.Choice [ write_path l_b0 l_b1 s_b; write_path l_a0 l_a1 s_a ];
        O.Release the_lock;
      ];
  }

(** Recovery does no repair at all: synthesize fresh leases and take the
    spec crash step.  The unflipped shadow area needs no cleanup. *)
let recovery_outline : O.recovery_outline =
  {
    O.r_body =
      [
        O.Synthesize l_ptr; O.Synthesize l_a0; O.Synthesize l_a1;
        O.Synthesize l_b0; O.Synthesize l_b1; O.Crash_step;
      ];
  }

let check () =
  O.check_system system
    ~op_outlines:[ read_outline; write_outline ]
    ~recovery:recovery_outline
