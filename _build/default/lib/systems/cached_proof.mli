(** The Perennial proof of the cached block: the lock invariant couples the
    volatile cache to the durable block ([∃v. lease(blk,v) ∗ cache ↦ v]),
    and recovery demonstrates the version bump on memory by allocating a
    fresh cell from the disk value. *)

module O := Perennial_core.Outline

val lock_inv : Seplogic.Assertion.t
val crash_inv : Seplogic.Assertion.t
val system : O.system
val get_outline : O.op_outline
val put_outline : O.op_outline
val recovery_outline : O.recovery_outline
val check : unit -> (string * O.result) list
