lib/systems/cached_proof.ml: Perennial_core Seplogic
