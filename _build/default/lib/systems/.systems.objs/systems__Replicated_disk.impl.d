lib/systems/replicated_disk.ml: Disk Fmt Fun Int List Map Perennial_core Sched Tslang
