lib/systems/shadow_proof.mli: Perennial_core Seplogic
