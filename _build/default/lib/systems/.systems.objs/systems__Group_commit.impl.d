lib/systems/group_commit.ml: Disk Fmt List Perennial_core Sched Tslang Wal
