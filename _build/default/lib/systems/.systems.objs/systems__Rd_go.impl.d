lib/systems/rd_go.ml:
