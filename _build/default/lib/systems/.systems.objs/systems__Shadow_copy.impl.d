lib/systems/shadow_copy.ml: Disk Fmt Perennial_core Sched Tslang
