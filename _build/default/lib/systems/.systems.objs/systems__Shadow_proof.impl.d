lib/systems/shadow_proof.ml: Perennial_core Seplogic
