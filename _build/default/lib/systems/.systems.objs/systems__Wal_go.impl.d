lib/systems/wal_go.ml:
