lib/systems/wal.ml: Disk Fmt Perennial_core Sched Tslang
