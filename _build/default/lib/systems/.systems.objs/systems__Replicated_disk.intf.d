lib/systems/replicated_disk.mli: Disk Fmt Int Map Perennial_core Sched Tslang
