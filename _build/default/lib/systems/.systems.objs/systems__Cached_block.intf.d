lib/systems/cached_block.mli: Disk Fmt Perennial_core Sched Tslang
