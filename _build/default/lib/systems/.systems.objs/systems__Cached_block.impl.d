lib/systems/cached_block.ml: Disk Fmt Perennial_core Sched Tslang
