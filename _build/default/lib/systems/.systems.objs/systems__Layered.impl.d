lib/systems/layered.ml: Disk Fmt Option Perennial_core Sched Tslang Wal
