lib/systems/shadow_go.ml:
