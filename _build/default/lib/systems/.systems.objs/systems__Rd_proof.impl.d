lib/systems/rd_proof.ml: Fmt Fun List Perennial_core Printf Seplogic Tslang
