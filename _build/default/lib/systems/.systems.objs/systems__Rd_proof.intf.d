lib/systems/rd_proof.mli: Perennial_core Seplogic
