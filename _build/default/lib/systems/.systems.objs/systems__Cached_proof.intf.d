lib/systems/cached_proof.mli: Perennial_core Seplogic
