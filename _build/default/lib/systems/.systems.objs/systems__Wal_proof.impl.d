lib/systems/wal_proof.ml: Perennial_core Seplogic Tslang
