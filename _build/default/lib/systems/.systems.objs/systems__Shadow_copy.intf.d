lib/systems/shadow_copy.mli: Disk Fmt Perennial_core Sched Tslang
