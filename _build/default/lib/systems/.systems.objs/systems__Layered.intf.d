lib/systems/layered.mli: Disk Fmt Perennial_core Sched Tslang Wal
