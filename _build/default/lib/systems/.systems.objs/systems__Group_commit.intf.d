lib/systems/group_commit.mli: Disk Fmt Perennial_core Sched Tslang
