lib/systems/wal_proof.mli: Perennial_core Seplogic
