lib/systems/wal.mli: Disk Fmt Perennial_core Sched Tslang
