(** The Perennial proof of the cached block, as checkable outlines — the
    versioned-memory (§5.2) study.

    The {e lock invariant} ties the volatile cache to the durable block:
    [∃v. lease(blk, v) ∗ cache ↦ v] — that coupling is what justifies
    serving reads from memory.  The {e crash invariant} is the usual
    master/abstract agreement, durable-only.  Recovery demonstrates the
    version bump on memory: the old [cache ↦ v] capability is gone, and
    recovery must {e allocate} a fresh cell (reading the disk for its
    value) before it can re-establish the lock invariant. *)

module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module O = Perennial_core.Outline

let l_blk = "blk"
let m_cache = "cache"
let c_val = "c"

let get_op : O.sym_op =
  {
    O.op_name = "get";
    sym_apply =
      (fun ~lookup args ->
        match args with
        | [] -> (
          match lookup c_val with
          | Some v -> Ok ([], v)
          | None -> Error "abstract cell not at hand")
        | _ -> Error "get takes no arguments");
  }

let put_op : O.sym_op =
  {
    O.op_name = "put";
    sym_apply =
      (fun ~lookup:_ args ->
        match args with
        | [ v ] -> Ok ([ (c_val, v) ], Sv.unit)
        | _ -> Error "put expects one argument");
  }

(** [∃v. lease(blk, v) ∗ cache ↦ v]: memory mirrors disk when the lock is
    free. *)
let lock_inv : A.t =
  [ A.heap [ A.lease l_blk (Sv.var "v"); A.pts m_cache (Sv.var "v") ] ]

let crash_inv : A.t =
  [ A.heap [ A.master l_blk (Sv.var "w"); A.spec_cell c_val (Sv.var "w") ] ]

let cinv = "cb"
let the_lock = 0

let system : O.system =
  {
    O.sys_name = "cached-block";
    ops = [ get_op; put_op ];
    crash_cells = (fun ~lookup:_ -> []);
    lock_invs = [ (the_lock, lock_inv) ];
    crash_invs = [ (cinv, crash_inv) ];
  }

(** get: read the cache; the lock invariant's coupling plus master/lease
    agreement proves the memory value IS the abstract value. *)
let get_outline : O.op_outline =
  {
    O.o_op = "get";
    o_args = [];
    o_ret = Sv.var "r";
    o_body =
      [
        O.Acquire the_lock;
        O.Read_mem { ptr = m_cache; bind = "r" };
        O.Open_inv
          { name = cinv; body = [ O.Simulate { op = "get"; args = []; bind_ret = "ret" } ] };
        O.Release the_lock;
      ];
  }

(** put: disk write (with the simulation — the commit point), then the
    cache update that re-establishes the coupling for release. *)
let put_outline : O.op_outline =
  {
    O.o_op = "put";
    o_args = [ Sv.var "v" ];
    o_ret = Sv.unit;
    o_body =
      [
        O.Acquire the_lock;
        O.Open_inv
          {
            name = cinv;
            body =
              [
                O.Write_durable { loc = l_blk; value = Sv.var "v" };
                O.Simulate { op = "put"; args = [ Sv.var "v" ]; bind_ret = "ret" };
              ];
          };
        O.Write_mem { ptr = m_cache; value = Sv.var "v" };
        O.Release the_lock;
      ];
  }

(** Recovery: synthesize the lease and *allocate* the cache cell at the new
    version, populated from the disk value. *)
let recovery_outline : O.recovery_outline =
  {
    O.r_body =
      [
        O.Synthesize l_blk;
        O.Read_durable { loc = l_blk; bind = "r" };
        O.Alloc_mem { ptr = m_cache; value = Sv.var "r" };
        O.Crash_step;
      ];
  }

let check () =
  O.check_system system
    ~op_outlines:[ get_outline; put_outline ]
    ~recovery:recovery_outline
