(** The replicated disk (paper §1, §3, Figures 3-5): two physical disks that
    together behave as one logical disk, tolerating one disk failure, with a
    per-address lock for linearizability and a recovery procedure that copies
    disk 1 onto disk 2 to complete interrupted writes.

    [spec] is the paper's Figure 3 verbatim; [read_prog]/[write_prog]
    are Figure 4 and [recover_prog] Figure 5.  The [Buggy] submodule
    contains deliberately broken variants that the refinement checker must
    reject (experiment E7). *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block
module IMap = Map.Make (Int)

let d1 = Disk.Two_disk.D1
let d2 = Disk.Two_disk.D2

(* ------------------------------------------------------------------ *)
(* Specification (Figure 3)                                            *)
(* ------------------------------------------------------------------ *)

type state = Block.t IMap.t

let spec_init size : state =
  List.init size (fun a -> (a, Block.zero)) |> List.to_seq |> IMap.of_seq

let spec size : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "replicated-disk";
    init = spec_init size;
    compare_state = IMap.compare Block.compare;
    pp_state =
      (fun ppf st ->
        Fmt.pf ppf "{%a}"
          (Fmt.list ~sep:Fmt.comma (fun ppf (a, b) -> Fmt.pf ppf "%d:%a" a Block.pp b))
          (IMap.bindings st));
    step =
      (fun op args ->
        match op, args with
        | "rd_read", [ V.Int a ] ->
          let* mv = T.gets (IMap.find_opt a) in
          (match mv with
          | Some v -> T.ret (Block.to_value v)
          | None -> T.undefined)
        | "rd_write", [ V.Int a; v ] ->
          let* mv = T.gets (IMap.find_opt a) in
          (match mv with
          | Some _ ->
            let* () = T.modify (IMap.add a (Block.of_value v)) in
            T.ret V.unit
          | None -> T.undefined)
        | _ -> invalid_arg "replicated-disk spec: unknown op");
    crash = T.ret () (* no data is lost on crash *);
  }

(* ------------------------------------------------------------------ *)
(* World: two disks + per-address locks                                *)
(* ------------------------------------------------------------------ *)

type world = { disks : Disk.Two_disk.t; locks : Disk.Locks.t }

let init_world ?(may_fail = false) size =
  { disks = Disk.Two_disk.init ~may_fail size; locks = Disk.Locks.empty }

(* Volatile locks clear on crash; disks persist. *)
let crash_world w = { disks = Disk.Two_disk.crash w.disks; locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a %a" Disk.Two_disk.pp w.disks Disk.Locks.pp w.locks

let get_disks w = w.disks
let set_disks w disks = { w with disks }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let lock a = Disk.Locks.acquire ~get:get_locks ~set:set_locks a
let unlock a = Disk.Locks.release ~get:get_locks ~set:set_locks a

let disk_read id a = Disk.Two_disk.read ~get:get_disks ~set:set_disks id a
let disk_write id a b = Disk.Two_disk.write ~get:get_disks ~set:set_disks id a b

(* ------------------------------------------------------------------ *)
(* Implementation (Figure 4)                                           *)
(* ------------------------------------------------------------------ *)

open P.Syntax

(* func rd_read(a): lock; v, ok := read(d1, a); if !ok { v = read(d2, a) };
   unlock; return v *)
let read_prog a : (world, V.t) P.t =
  let* () = lock a in
  let* r1 = disk_read d1 a in
  let* v =
    match V.get_opt r1 with
    | Some v -> P.return v
    | None ->
      (* disk 1 failed: fall back to disk 2, which cannot also have failed *)
      let* r2 = disk_read d2 a in
      (match V.get_opt r2 with
      | Some v -> P.return v
      | None -> P.ub "both disks failed")
  in
  let* () = unlock a in
  P.return v

(* func rd_write(a, v): lock; write(d1, a, v); write(d2, a, v); unlock *)
let write_prog a v : (world, V.t) P.t =
  let b = Block.of_value v in
  let* () = lock a in
  let* () = disk_write d1 a b in
  let* () = disk_write d2 a b in
  let* () = unlock a in
  P.return V.unit

(* func rd_recover(): for a := range disk { v, ok := read(d1, a);
   if ok { write(d2, a, v) } } (Figure 5) *)
let recover_prog size : (world, V.t) P.t =
  let rec loop a =
    if a >= size then P.return V.unit
    else
      let* r1 = disk_read d1 a in
      match V.get_opt r1 with
      | Some v ->
        let* () = disk_write d2 a (Block.of_value v) in
        loop (a + 1)
      | None -> loop (a + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Calls and checker configuration                                     *)
(* ------------------------------------------------------------------ *)

let read_call a = (Spec.call "rd_read" [ V.int a ], read_prog a)
let write_call a v = (Spec.call "rd_write" [ V.int a; v ], write_prog a v)

(** Probe: read an address twice, so that a disk-1 failure between the two
    reads exposes any divergence between the disks. *)
let probe size =
  List.concat_map (fun a -> [ read_call a; read_call a ]) (List.init size Fun.id)

let checker_config ?(may_fail = true) ?(max_crashes = 1) ~size threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:(spec size)
    ~init_world:(init_world ~may_fail size)
    ~crash_world ~pp_world ~threads ~recovery:(recover_prog size)
    ~post:(probe size) ~max_crashes ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs (experiment E7, §9.5)                                   *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** No recovery at all: a crash between the two disk writes leaves the
      disks diverged forever. *)
  let recover_nop : (world, V.t) P.t = P.return V.unit

  (** "Zero both disks to make them agree": reverts completed writes,
      violating durability. *)
  let recover_zero size : (world, V.t) P.t =
    let rec loop a =
      if a >= size then P.return V.unit
      else
        let* () = disk_write d1 a Block.zero in
        let* () = disk_write d2 a Block.zero in
        loop (a + 1)
    in
    loop 0

  (** Recovery that only repairs address 0, missing divergence elsewhere. *)
  let recover_partial _size : (world, V.t) P.t =
    let* r1 = disk_read d1 0 in
    match V.get_opt r1 with
    | Some v ->
      let* () = disk_write d2 0 (Block.of_value v) in
      P.return V.unit
    | None -> P.return V.unit

  (** Write without taking the per-address lock: two concurrent writers can
      install different orders on the two disks. *)
  let write_prog_unlocked a v : (world, V.t) P.t =
    let b = Block.of_value v in
    let* () = disk_write d1 a b in
    let* () = disk_write d2 a b in
    P.return V.unit

  let write_call_unlocked a v =
    (Spec.call "rd_write" [ V.int a; v ], write_prog_unlocked a v)

  (** Write that releases the lock between the two disk writes: the lock no
      longer covers the critical section. *)
  let write_prog_early_unlock a v : (world, V.t) P.t =
    let b = Block.of_value v in
    let* () = lock a in
    let* () = disk_write d1 a b in
    let* () = unlock a in
    let* () = disk_write d2 a b in
    P.return V.unit

  let write_call_early_unlock a v =
    (Spec.call "rd_write" [ V.int a; v ], write_prog_early_unlock a v)
end
