(** Write-ahead logging (§9.1): atomic update of a pair of disk blocks via
    log / commit-flag / apply / clear, with recovery replaying a committed-
    but-unapplied transaction — the paper's recovery-helping example.

    Disk layout (5 blocks): data pair at 0-1, commit flag at 2 (["e"] or
    ["c"]), log entries at 3-4. *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog

val disk_size : int
val data0 : int
val data1 : int
val flag_addr : int
val log0 : int
val log1 : int
val flag_empty : Disk.Block.t
val flag_committed : Disk.Block.t

(** {1 Specification: an atomic pair} *)

type state = Disk.Block.t * Disk.Block.t

val spec : state Spec.t

(** {1 World and implementation} *)

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

val init_world : unit -> world
val crash_world : world -> world
val pp_world : world Fmt.t
val get_disk : world -> Disk.Single_disk.t

val read_prog : (world, V.t) P.t
val write_prog : V.t -> V.t -> (world, V.t) P.t
val recover_prog : (world, V.t) P.t

(** {1 Checker plumbing} *)

val read_call : Spec.call * (world, V.t) P.t
val write_call : V.t -> V.t -> Spec.call * (world, V.t) P.t

val checker_config :
  ?max_crashes:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config

(** {1 Seeded bugs} *)

module Buggy : sig
  val write_no_log : V.t -> V.t -> (world, V.t) P.t
  val write_call_no_log : V.t -> V.t -> Spec.call * (world, V.t) P.t
  val write_commit_first : V.t -> V.t -> (world, V.t) P.t
  val write_call_commit_first : V.t -> V.t -> Spec.call * (world, V.t) P.t
  val recover_clear_first : (world, V.t) P.t
  val recover_nop : (world, V.t) P.t
end
