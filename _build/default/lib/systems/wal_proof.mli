(** The Perennial proof of the write-ahead log, as checkable outlines — the
    proof the paper highlights for recovery helping (§9.1): a transaction
    deposits its [j ⤇ log_write(v1,v2)] token into the crash invariant at
    the commit flag write, and whoever clears the flag — the writer, or
    recovery after a crash — simulates the operation. *)

module O := Perennial_core.Outline

val lock_inv : Seplogic.Assertion.t
val crash_inv : Seplogic.Assertion.t
val system : O.system
val read_outline : O.op_outline
val write_outline : O.op_outline
val recovery_outline : O.recovery_outline
val check : unit -> (string * O.result) list
