(** A write-through cached disk block — the versioned-memory (§5.2) study.

    One durable block is mirrored by an in-memory cache; reads serve from
    memory, writes go through to disk and then update the cache.  The cache
    is volatile: a crash clears it, and recovery must repopulate it from
    disk before operations resume — exactly the paper's "recovery obtains
    capabilities for the fresh memory at the new version number" (Fig. 9).

    Together with {!Cached_proof} this exercises the memory rules of the
    outline checker (points-to in a lock invariant, allocation during
    recovery) that the disk-only examples never touch. *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block

(* ------------------------------------------------------------------ *)
(* Specification: one atomic cell                                      *)
(* ------------------------------------------------------------------ *)

type state = Block.t

let spec : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "cached-block";
    init = Block.zero;
    compare_state = Block.compare;
    pp_state = Block.pp;
    step =
      (fun op args ->
        match op, args with
        | "get", [] -> T.gets Block.to_value
        | "put", [ v ] ->
          let* () = T.puts (Block.of_value v) in
          T.ret V.unit
        | _ -> invalid_arg "cached-block spec: unknown op");
    crash = T.ret ();
  }

(* ------------------------------------------------------------------ *)
(* World: one disk block, one volatile cache cell, one lock            *)
(* ------------------------------------------------------------------ *)

type world = {
  disk : Disk.Single_disk.t;
  cache : Block.t option;  (** volatile; [None] = not (re)populated *)
  locks : Disk.Locks.t;
}

let init_world () =
  { disk = Disk.Single_disk.init 1; cache = Some Block.zero; locks = Disk.Locks.empty }

let crash_world w = { w with cache = None; locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a cache=%a %a" Disk.Single_disk.pp w.disk
    (Fmt.option ~none:(Fmt.any "-") Block.pp) w.cache Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock

let read_cache : (world, V.t) P.t =
  P.atomic "cache_read" (fun w ->
      match w.cache with
      | Some b -> P.Steps [ (w, Block.to_value b) ]
      | None -> P.Ub "cache read before recovery repopulated it (§5.2)")

let write_cache b : (world, unit) P.t =
  P.write "cache_write" (fun w -> { w with cache = Some b })

open P.Syntax

(* ------------------------------------------------------------------ *)
(* Implementation                                                      *)
(* ------------------------------------------------------------------ *)

(** Serve from memory. *)
let get_prog : (world, V.t) P.t =
  let* () = lock () in
  let* v = read_cache in
  let* () = unlock () in
  P.return v

(** Write through: disk first (the commit point), then the cache. *)
let put_prog v : (world, V.t) P.t =
  let* () = lock () in
  let* () = Disk.Single_disk.write ~get_disk ~set_disk 0 (Block.of_value v) in
  let* () = write_cache (Block.of_value v) in
  let* () = unlock () in
  P.return V.unit

(** Recovery repopulates the cache from disk — fresh memory at the new
    version. *)
let recover_prog : (world, V.t) P.t =
  let* b = Disk.Single_disk.read ~get_disk 0 in
  let* () = write_cache (Block.of_value b) in
  P.return V.unit

(* ------------------------------------------------------------------ *)
(* Checker plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let get_call = (Spec.call "get" [], get_prog)
let put_call v = (Spec.call "put" [ v ], put_prog v)

let checker_config ?(max_crashes = 1) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec ~init_world:(init_world ())
    ~crash_world ~pp_world ~threads ~recovery:recover_prog
    ~post:[ get_call ] ~max_crashes ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                         *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** Forget the cache update: later reads serve a stale value — caught
      without any crash. *)
  let put_no_cache_update v : (world, V.t) P.t =
    let* () = lock () in
    let* () = Disk.Single_disk.write ~get_disk ~set_disk 0 (Block.of_value v) in
    let* () = unlock () in
    P.return V.unit

  let put_call_no_cache_update v = (Spec.call "put" [ v ], put_no_cache_update v)

  (** Recovery that skips repopulation: the next read hits UB. *)
  let recover_nop : (world, V.t) P.t = P.return V.unit
end
