(** The Perennial proof of the replicated disk, as checkable outlines.

    This is the OCaml rendering of the Coq proof sketched through §5 of the
    paper, instantiated per disk address:

    - the {e lock invariant} for address [a] holds the two recovery leases
      and forces their values to agree: [∃v. lease(d1[a],v) ∗ lease(d2[a],v)];
    - the {e crash invariant} for address [a] is the paper's §5.4 assertion:
      either the disks agree and match the abstract state, or they differ,
      the abstract state matches disk 2 (the not-yet-completed write), and a
      helping token [j ⤇ rd_write(a, v1)] is stored for recovery;
    - [rd_write]'s outline opens the crash invariant once per physical disk
      write, deposits its own token after the first write, simulates its
      operation at the second (the linearization point) — after a classical
      case split on whether the written value equals the old one, which
      picks the matching invariant disjunct;
    - [rd_recover]'s outline synthesizes fresh leases from the master
      copies (the version-bump rule), copies disk 1 to disk 2, and uses the
      stored helping token to simulate the interrupted write. *)

module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module Pu = Seplogic.Pure
module O = Perennial_core.Outline
module V = Tslang.Value

let loc1 a = Printf.sprintf "d1[%d]" a
let loc2 a = Printf.sprintf "d2[%d]" a
let cell a = string_of_int a

(* --- symbolic spec operations --- *)

let concrete_addr = function
  | Sv.Const (V.Int a) -> Ok a
  | sv -> Error (Fmt.str "address must be concrete in outline instantiation, got %a" Sv.pp sv)

let rd_read_op : O.sym_op =
  {
    O.op_name = "rd_read";
    sym_apply =
      (fun ~lookup args ->
        match args with
        | [ addr ] -> (
          match concrete_addr addr with
          | Error e -> Error e
          | Ok a -> (
            match lookup (cell a) with
            | Some v -> Ok ([], v)
            | None -> Error (Fmt.str "σ[%d] not at hand" a)))
        | _ -> Error "rd_read expects one argument");
  }

let rd_write_op : O.sym_op =
  {
    O.op_name = "rd_write";
    sym_apply =
      (fun ~lookup:_ args ->
        match args with
        | [ addr; v ] -> (
          match concrete_addr addr with
          | Error e -> Error e
          | Ok a -> Ok ([ (cell a, v) ], Sv.unit))
        | _ -> Error "rd_write expects two arguments");
  }

(* --- invariants --- *)

let lock_inv a : A.t =
  [ A.heap [ A.lease (loc1 a) (Sv.var "v"); A.lease (loc2 a) (Sv.var "v") ] ]

(** §5.4: "for every disk address a where disk 1 has value v1 and disk 2 has
    value v2, if v1 ≠ v2, then j ⤇ Write(a, v1)"; the abstract state tracks
    disk 2 (the last *completed* write). *)
let crash_inv a : A.t =
  [
    A.heap
      ~pures:[]
      [ A.master (loc1 a) (Sv.var "w"); A.master (loc2 a) (Sv.var "w");
        A.spec_cell (cell a) (Sv.var "w") ];
    A.heap
      ~pures:[ Pu.neq (Sv.var "w1") (Sv.var "w2") ]
      [ A.master (loc1 a) (Sv.var "w1"); A.master (loc2 a) (Sv.var "w2");
        A.spec_cell (cell a) (Sv.var "w2");
        A.spec_tok (Sv.var "jh") "rd_write" [ Sv.int a; Sv.var "w1" ] ];
  ]

let cinv_name a = Printf.sprintf "c%d" a

let system size : O.system =
  let addrs = List.init size Fun.id in
  {
    O.sys_name = "replicated-disk";
    ops = [ rd_read_op; rd_write_op ];
    crash_cells = (fun ~lookup:_ -> [] (* crash loses nothing *));
    lock_invs = List.map (fun a -> (a, lock_inv a)) addrs;
    crash_invs = List.map (fun a -> (cinv_name a, crash_inv a)) addrs;
  }

(* --- operation outlines --- *)

(** rd_read(a): lock, read disk 1, simulate at the read (linearization
    point), unlock, return the value read. *)
let read_outline a : O.op_outline =
  {
    O.o_op = "rd_read";
    o_args = [ Sv.int a ];
    o_ret = Sv.var "r";
    o_body =
      [
        O.Acquire a;
        O.Read_durable { loc = loc1 a; bind = "x" };
        O.Open_inv
          {
            name = cinv_name a;
            body = [ O.Simulate { op = "rd_read"; args = [ Sv.int a ]; bind_ret = "r" } ];
          };
        O.Release a;
      ];
  }

(** rd_write(a, v): lock; write disk 1 (depositing the helping token into
    the crash invariant when the value changes); write disk 2 and simulate
    (the linearization point); unlock. *)
let write_outline a : O.op_outline =
  {
    O.o_op = "rd_write";
    o_args = [ Sv.int a; Sv.var "v" ];
    o_ret = Sv.unit;
    o_body =
      [
        O.Acquire a;
        O.Read_durable { loc = loc1 a; bind = "old" };
        O.Case_eq (Sv.var "v", Sv.var "old");
        O.Open_inv
          { name = cinv_name a; body = [ O.Write_durable { loc = loc1 a; value = Sv.var "v" } ] };
        O.Open_inv
          {
            name = cinv_name a;
            body =
              [
                O.Write_durable { loc = loc2 a; value = Sv.var "v" };
                O.Simulate
                  { op = "rd_write"; args = [ Sv.int a; Sv.var "v" ]; bind_ret = "r" };
              ];
          };
        O.Release a;
      ];
  }

(* --- recovery outline --- *)

(** rd_recover: per address — synthesize fresh leases from the masters
    (§5.3's crash rule), read disk 1, copy onto disk 2; if a helping token
    is stored (the crash interrupted a write), simulate it (§5.4). *)
let recover_addr a : O.cmd list =
  [
    O.Synthesize (loc1 a);
    O.Synthesize (loc2 a);
    O.Read_durable { loc = loc1 a; bind = Printf.sprintf "r%d" a };
    O.Atomic
      [
        O.Choice
          [
            [
              O.Write_durable { loc = loc2 a; value = Sv.var (Printf.sprintf "r%d" a) };
              O.Simulate
                {
                  op = "rd_write";
                  args = [ Sv.int a; Sv.var (Printf.sprintf "r%d" a) ];
                  bind_ret = Printf.sprintf "hr%d" a;
                };
            ];
            [ O.Write_durable { loc = loc2 a; value = Sv.var (Printf.sprintf "r%d" a) } ];
          ];
      ];
  ]

let recovery_outline size : O.recovery_outline =
  { O.r_body = List.concat_map recover_addr (List.init size Fun.id) @ [ O.Crash_step ] }

(** The full Theorem-2 premise bundle for a [size]-address replicated disk. *)
let check size =
  O.check_system (system size)
    ~op_outlines:
      (List.concat_map (fun a -> [ read_outline a; write_outline a ]) (List.init size Fun.id))
    ~recovery:(recovery_outline size)
