(** Composition study: the write-ahead log layered over the replicated
    disk, with hand-chained recoveries (inner repair first, then log
    replay) — probing the paper's §1 layering limitation.  Tolerates a
    crash at any step plus one disk failure. *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog

type world = { disks : Disk.Two_disk.t; locks : Disk.Locks.t }

val init_world : ?may_fail:bool -> unit -> world
val crash_world : world -> world
val pp_world : world Fmt.t

val read_prog : (world, V.t) P.t
val write_prog : V.t -> V.t -> (world, V.t) P.t
val recover_prog : (world, V.t) P.t
(** [rd_recover] then [wal_recover] — recovery chaining by hand. *)

val read_call : Spec.call * (world, V.t) P.t
val write_call : V.t -> V.t -> Spec.call * (world, V.t) P.t

val checker_config :
  ?may_fail:bool ->
  ?max_crashes:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, Wal.state) Perennial_core.Refinement.config

module Buggy : sig
  val recover_rd_only : (world, V.t) P.t
  (** Re-mirrors the disks but never replays the log: a transaction that
      crashed mid-apply stays torn. *)
end
