(** The Perennial proof of the shadow-copy system, as checkable outlines.
    The crash invariant has one disjunct per active area; writes fill the
    shadow and simulate at the pointer flip; recovery is a no-op up to
    lease synthesis and the spec crash step. *)

module O := Perennial_core.Outline
module Sv := Seplogic.Sval

val lock_inv : Seplogic.Assertion.t
val crash_inv : Seplogic.Assertion.t
val system : O.system
val read_outline : O.op_outline
val write_outline : O.op_outline

val write_path : string -> string -> Sv.t -> O.cmd list
(** [write_path shadow0 shadow1 new_ptr]: fill the named shadow area, then
    flip the pointer with the simulation — exposed so tests can build
    broken variants. *)

val recovery_outline : O.recovery_outline
val check : unit -> (string * O.result) list
