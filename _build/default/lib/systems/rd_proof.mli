(** The Perennial proof of the replicated disk, as checkable outlines — the
    OCaml rendering of the Coq proof sketched through §5, instantiated per
    disk address.  The crash invariant is §5.4's: either the disks agree
    and match the abstract state, or they differ, the abstract state
    matches disk 2, and a helping token [j ⤇ rd_write(a, v1)] is stored
    for recovery. *)

module O := Perennial_core.Outline

val lock_inv : int -> Seplogic.Assertion.t
val crash_inv : int -> Seplogic.Assertion.t
val cinv_name : int -> string

val system : int -> O.system
(** [system size]: per-address locks and crash invariants for addresses
    [0 .. size-1]. *)

val read_outline : int -> O.op_outline
val write_outline : int -> O.op_outline
val recover_addr : int -> O.cmd list
val recovery_outline : int -> O.recovery_outline

val check : int -> (string * O.result) list
(** The full Theorem-2 premise bundle for a [size]-address disk. *)
