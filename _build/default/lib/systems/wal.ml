(** Write-ahead logging (§9.1): atomic update of a pair of disk blocks by
    first writing the new values into a log, committing with one atomic
    flag write, applying to the data area, and clearing the flag.  If a
    crash strikes after commit but before the apply completes, recovery
    replays the log — completing the interrupted transaction on behalf of
    the crashed thread (recovery helping, §5.4).

    Disk layout (5 blocks):
    - blocks 0,1: data pair
    - block 2:    commit flag, ["e"]mpty or ["c"]ommitted
    - blocks 3,4: log entries *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block

let disk_size = 5
let data0 = 0
let data1 = 1
let flag_addr = 2
let log0 = 3
let log1 = 4
let flag_empty = Block.of_string "e"
let flag_committed = Block.of_string "c"

(* ------------------------------------------------------------------ *)
(* Specification: an atomic pair (same as shadow copy)                 *)
(* ------------------------------------------------------------------ *)

type state = Block.t * Block.t

let spec : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "write-ahead-log";
    init = (Block.zero, Block.zero);
    compare_state =
      (fun (a1, b1) (a2, b2) ->
        let c = Block.compare a1 a2 in
        if c <> 0 then c else Block.compare b1 b2);
    pp_state = (fun ppf (a, b) -> Fmt.pf ppf "(%a, %a)" Block.pp a Block.pp b);
    step =
      (fun op args ->
        match op, args with
        | "pair_read", [] ->
          let* (a, b) = T.reads in
          T.ret (V.pair (Block.to_value a) (Block.to_value b))
        | "log_write", [ v1; v2 ] ->
          let* () = T.puts (Block.of_value v1, Block.of_value v2) in
          T.ret V.unit
        | _ -> invalid_arg "wal spec: unknown op");
    crash = T.ret ();
  }

(* ------------------------------------------------------------------ *)
(* World and implementation                                             *)
(* ------------------------------------------------------------------ *)

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

let init_world () =
  let disk = Disk.Single_disk.init disk_size in
  let disk = Disk.Single_disk.set disk flag_addr flag_empty in
  { disk; locks = Disk.Locks.empty }

let crash_world w = { w with locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a %a" Disk.Single_disk.pp w.disk Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock
let disk_read a = Disk.Single_disk.read ~get_disk a
let disk_write a b = Disk.Single_disk.write ~get_disk ~set_disk a b

open P.Syntax

let read_prog : (world, V.t) P.t =
  let* () = lock () in
  let* v1 = disk_read data0 in
  let* v2 = disk_read data1 in
  let* () = unlock () in
  P.return (V.pair v1 v2)

let write_prog v1 v2 : (world, V.t) P.t =
  let b1 = Block.of_value v1 and b2 = Block.of_value v2 in
  let* () = lock () in
  let* () = disk_write log0 b1 in
  let* () = disk_write log1 b2 in
  (* the commit point: one atomic flag write *)
  let* () = disk_write flag_addr flag_committed in
  let* () = disk_write data0 b1 in
  let* () = disk_write data1 b2 in
  let* () = disk_write flag_addr flag_empty in
  let* () = unlock () in
  P.return V.unit

(** Recovery replays a committed-but-unapplied transaction from the log —
    the helping pattern: the crashed writer's operation completes here. *)
let recover_prog : (world, V.t) P.t =
  let* f = disk_read flag_addr in
  if Block.equal (Block.of_value f) flag_committed then
    let* l1 = disk_read log0 in
    let* l2 = disk_read log1 in
    let* () = disk_write data0 (Block.of_value l1) in
    let* () = disk_write data1 (Block.of_value l2) in
    let* () = disk_write flag_addr flag_empty in
    P.return V.unit
  else P.return V.unit

(* ------------------------------------------------------------------ *)
(* Checker configuration                                                *)
(* ------------------------------------------------------------------ *)

let read_call = (Spec.call "pair_read" [], read_prog)
let write_call v1 v2 = (Spec.call "log_write" [ v1; v2 ], write_prog v1 v2)

let checker_config ?(max_crashes = 1) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec ~init_world:(init_world ())
    ~crash_world ~pp_world ~threads ~recovery:recover_prog
    ~post:[ read_call ] ~max_crashes ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                          *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** Apply without logging first: a crash mid-apply tears the pair. *)
  let write_no_log v1 v2 : (world, V.t) P.t =
    let* () = lock () in
    let* () = disk_write data0 (Block.of_value v1) in
    let* () = disk_write data1 (Block.of_value v2) in
    let* () = unlock () in
    P.return V.unit

  let write_call_no_log v1 v2 = (Spec.call "log_write" [ v1; v2 ], write_no_log v1 v2)

  (** Set the commit flag before the log entries are written: recovery can
      replay garbage. *)
  let write_commit_first v1 v2 : (world, V.t) P.t =
    let b1 = Block.of_value v1 and b2 = Block.of_value v2 in
    let* () = lock () in
    let* () = disk_write flag_addr flag_committed in
    let* () = disk_write log0 b1 in
    let* () = disk_write log1 b2 in
    let* () = disk_write data0 b1 in
    let* () = disk_write data1 b2 in
    let* () = disk_write flag_addr flag_empty in
    let* () = unlock () in
    P.return V.unit

  let write_call_commit_first v1 v2 =
    (Spec.call "log_write" [ v1; v2 ], write_commit_first v1 v2)

  (** Recovery that clears the flag before replaying: a crash between the
      two recovery steps loses the committed transaction mid-apply. *)
  let recover_clear_first : (world, V.t) P.t =
    let* f = disk_read flag_addr in
    if Block.equal (Block.of_value f) flag_committed then
      let* () = disk_write flag_addr flag_empty in
      let* l1 = disk_read log0 in
      let* l2 = disk_read log1 in
      let* () = disk_write data0 (Block.of_value l1) in
      let* () = disk_write data1 (Block.of_value l2) in
      P.return V.unit
    else P.return V.unit

  (** Recovery that ignores the log entirely. *)
  let recover_nop : (world, V.t) P.t = P.return V.unit
end
