(** Composition study: the write-ahead log layered over the replicated disk.

    The paper notes Perennial "does not currently support composing layers
    of abstraction" (§1), deferring to Argosy-style recovery chaining.
    This module composes the two systems {e manually}: the WAL's reads and
    writes go through replicated-disk operations over two physical disks,
    and the composed recovery runs the layers' recoveries in order —
    replicated-disk repair first (restoring the one-logical-disk
    abstraction), then log replay on top of it.  The composed system
    tolerates a crash at any step {e and} the failure of one disk, and the
    refinement checker validates the whole stack against the same atomic-
    pair specification as the plain WAL.

    What the exercise shows is exactly why framework-level layering support
    is desirable: the inner layer's abstraction (and its recovery) must be
    re-threaded through the outer proof by hand. *)

module V = Tslang.Value
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block

(* Layout on the logical disk, as in {!Wal}. *)
let disk_size = Wal.disk_size

type world = { disks : Disk.Two_disk.t; locks : Disk.Locks.t }

let init_world ?(may_fail = false) () =
  let disks = Disk.Two_disk.init ~may_fail disk_size in
  (* the flag block starts "e" on both disks *)
  let set_flag d =
    Option.map (fun sd -> Disk.Single_disk.set sd Wal.flag_addr Wal.flag_empty) d
  in
  let disks =
    Disk.Two_disk.
      { disks with d1 = set_flag disks.d1; d2 = set_flag disks.d2 }
  in
  { disks; locks = Disk.Locks.empty }

let crash_world w = { w with locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a %a" Disk.Two_disk.pp w.disks Disk.Locks.pp w.locks

let get_disks w = w.disks
let set_disks w disks = { w with disks }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock

open P.Syntax

(* ------------------------------------------------------------------ *)
(* The inner layer: replicated-disk read/write/recover                 *)
(* ------------------------------------------------------------------ *)

(* The WAL's global lock serializes all access, so the inner layer needs
   no per-address locks of its own here — one simplification manual
   composition quietly relies on. *)

let rd_write a b : (world, unit) P.t =
  let* () = Disk.Two_disk.write ~get:get_disks ~set:set_disks Disk.Two_disk.D1 a b in
  Disk.Two_disk.write ~get:get_disks ~set:set_disks Disk.Two_disk.D2 a b

let rd_read a : (world, V.t) P.t =
  let* r1 = Disk.Two_disk.read ~get:get_disks ~set:set_disks Disk.Two_disk.D1 a in
  match V.get_opt r1 with
  | Some v -> P.return v
  | None ->
    let* r2 = Disk.Two_disk.read ~get:get_disks ~set:set_disks Disk.Two_disk.D2 a in
    (match V.get_opt r2 with
    | Some v -> P.return v
    | None -> P.ub "both disks failed")

let rd_recover : (world, unit) P.t =
  let rec loop a =
    if a >= disk_size then P.return ()
    else
      let* r1 = Disk.Two_disk.read ~get:get_disks ~set:set_disks Disk.Two_disk.D1 a in
      match V.get_opt r1 with
      | Some v ->
        let* () =
          Disk.Two_disk.write ~get:get_disks ~set:set_disks Disk.Two_disk.D2 a
            (Block.of_value v)
        in
        loop (a + 1)
      | None -> loop (a + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* The outer layer: the WAL over the logical disk                      *)
(* ------------------------------------------------------------------ *)

let read_prog : (world, V.t) P.t =
  let* () = lock () in
  let* v1 = rd_read Wal.data0 in
  let* v2 = rd_read Wal.data1 in
  let* () = unlock () in
  P.return (V.pair v1 v2)

let write_prog v1 v2 : (world, V.t) P.t =
  let b1 = Block.of_value v1 and b2 = Block.of_value v2 in
  let* () = lock () in
  let* () = rd_write Wal.log0 b1 in
  let* () = rd_write Wal.log1 b2 in
  let* () = rd_write Wal.flag_addr Wal.flag_committed in
  let* () = rd_write Wal.data0 b1 in
  let* () = rd_write Wal.data1 b2 in
  let* () = rd_write Wal.flag_addr Wal.flag_empty in
  let* () = unlock () in
  P.return V.unit

let wal_recover : (world, unit) P.t =
  let* f = rd_read Wal.flag_addr in
  if Block.equal (Block.of_value f) Wal.flag_committed then
    let* l1 = rd_read Wal.log0 in
    let* l2 = rd_read Wal.log1 in
    let* () = rd_write Wal.data0 (Block.of_value l1) in
    let* () = rd_write Wal.data1 (Block.of_value l2) in
    rd_write Wal.flag_addr Wal.flag_empty
  else P.return ()

(** The composed recovery: repair the logical-disk abstraction first, then
    replay the log on top of it — recovery chaining by hand. *)
let recover_prog : (world, V.t) P.t =
  let* () = rd_recover in
  let* () = wal_recover in
  P.return V.unit

(* ------------------------------------------------------------------ *)
(* Checker plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let read_call = (Spec.call "pair_read" [], read_prog)
let write_call v1 v2 = (Spec.call "log_write" [ v1; v2 ], write_prog v1 v2)

let checker_config ?(may_fail = true) ?(max_crashes = 1) threads :
    (world, Wal.state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec:Wal.spec ~init_world:(init_world ~may_fail ())
    ~crash_world ~pp_world ~threads ~recovery:recover_prog
    ~post:[ read_call; read_call ] ~max_crashes ()

module Buggy = struct
  (** Recovery that runs only the inner layer: the disks get re-mirrored,
      but a transaction that crashed mid-apply stays torn — the outer
      layer's replay was load-bearing.  (Interestingly, the converse —
      dropping [rd_recover] — is {e not} observably wrong here: the WAL's
      replay incidentally re-mirrors every block it touches, and the
      blocks it does not touch are not observable through reads.  Manual
      composition is full of such accidents; framework-level layering
      would make the obligation explicit.) *)
  let recover_rd_only : (world, V.t) P.t =
    let* () = rd_recover in
    P.return V.unit
end
