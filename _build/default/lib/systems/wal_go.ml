(** The write-ahead log in Goose source, using the [disk] package — the §9.1 example expressed the way the paper's later artifacts are.  Generated from examples/goose/wal.go (the canonical file). *)

let source = {goo|
package walgo

import (
	"disk"
	"sync"
)

// Write commits the pair (v1, v2) atomically: log, commit flag, apply,
// clear.  The flag write at block 2 is the commit point.
func Write(v1 []byte, v2 []byte) {
	sync.Lock(0)
	disk.Write(3, v1)
	disk.Write(4, v2)
	disk.Write(2, []byte("c"))
	disk.Write(0, v1)
	disk.Write(1, v2)
	disk.Write(2, []byte("e"))
	sync.Unlock(0)
}

// Read returns the current pair.
func Read() (string, string) {
	sync.Lock(0)
	a := disk.Read(0)
	b := disk.Read(1)
	sync.Unlock(0)
	return string(a), string(b)
}

// Recover replays a committed-but-unapplied transaction from the log —
// completing the crashed writer's operation (recovery helping, §5.4).
func Recover() {
	f := disk.Read(2)
	if string(f) == "c" {
		a := disk.Read(3)
		b := disk.Read(4)
		disk.Write(0, a)
		disk.Write(1, b)
		disk.Write(2, []byte("e"))
	}
}
|goo}
