(** Shadow copy (§9.1): atomic update of a *pair* of disk blocks by writing
    the new pair into an inactive area and then atomically flipping a
    pointer block.  A crash before the flip leaves the old pair visible; the
    flip itself is one atomic block write, so no recovery work is needed —
    the shadow area is simply garbage.

    Disk layout (5 blocks):
    - blocks 0,1: pair area A
    - blocks 2,3: pair area B
    - block 4:    pointer, ["A"] or ["B"] — which area is current *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block

let disk_size = 5
let ptr_addr = 4
let area_base = function "A" -> 0 | "B" -> 2 | _ -> invalid_arg "area"
let other_area = function "A" -> "B" | "B" -> "A" | _ -> invalid_arg "area"

(* ------------------------------------------------------------------ *)
(* Specification: an atomic pair                                        *)
(* ------------------------------------------------------------------ *)

type state = Block.t * Block.t

let spec : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "shadow-copy";
    init = (Block.zero, Block.zero);
    compare_state =
      (fun (a1, b1) (a2, b2) ->
        let c = Block.compare a1 a2 in
        if c <> 0 then c else Block.compare b1 b2);
    pp_state = (fun ppf (a, b) -> Fmt.pf ppf "(%a, %a)" Block.pp a Block.pp b);
    step =
      (fun op args ->
        match op, args with
        | "pair_read", [] ->
          let* (a, b) = T.reads in
          T.ret (V.pair (Block.to_value a) (Block.to_value b))
        | "pair_write", [ v1; v2 ] ->
          let* () = T.puts (Block.of_value v1, Block.of_value v2) in
          T.ret V.unit
        | _ -> invalid_arg "shadow-copy spec: unknown op");
    crash = T.ret ();
  }

(* ------------------------------------------------------------------ *)
(* World and implementation                                             *)
(* ------------------------------------------------------------------ *)

type world = { disk : Disk.Single_disk.t; locks : Disk.Locks.t }

let init_world () =
  let disk = Disk.Single_disk.init disk_size in
  let disk = Disk.Single_disk.set disk ptr_addr (Block.of_string "A") in
  { disk; locks = Disk.Locks.empty }

let crash_world w = { w with locks = Disk.Locks.empty }

let pp_world ppf w =
  Fmt.pf ppf "%a %a" Disk.Single_disk.pp w.disk Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock
let disk_read a = Disk.Single_disk.read ~get_disk a
let disk_write a b = Disk.Single_disk.write ~get_disk ~set_disk a b

open P.Syntax

let read_prog : (world, V.t) P.t =
  let* () = lock () in
  let* p = disk_read ptr_addr in
  let base = area_base (Block.of_value p |> Block.to_string) in
  let* v1 = disk_read base in
  let* v2 = disk_read (base + 1) in
  let* () = unlock () in
  P.return (V.pair v1 v2)

let write_prog v1 v2 : (world, V.t) P.t =
  let* () = lock () in
  let* p = disk_read ptr_addr in
  let cur = Block.of_value p |> Block.to_string in
  let shadow = other_area cur in
  let base = area_base shadow in
  let* () = disk_write base (Block.of_value v1) in
  let* () = disk_write (base + 1) (Block.of_value v2) in
  (* the commit point: one atomic block write flips the current area *)
  let* () = disk_write ptr_addr (Block.of_string shadow) in
  let* () = unlock () in
  P.return V.unit

(* Shadow copies need no recovery: an unflipped shadow area is invisible. *)
let recover_prog : (world, V.t) P.t = P.return V.unit

(* ------------------------------------------------------------------ *)
(* Checker configuration                                                *)
(* ------------------------------------------------------------------ *)

let read_call = (Spec.call "pair_read" [], read_prog)
let write_call v1 v2 = (Spec.call "pair_write" [ v1; v2 ], write_prog v1 v2)

let checker_config ?(max_crashes = 1) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec ~init_world:(init_world ())
    ~crash_world ~pp_world ~threads ~recovery:recover_prog
    ~post:[ read_call ] ~max_crashes ()

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                          *)
(* ------------------------------------------------------------------ *)

module Buggy = struct
  (** Update the pair in place: a crash between the two writes exposes a
      torn pair. *)
  let write_in_place v1 v2 : (world, V.t) P.t =
    let* () = lock () in
    let* p = disk_read ptr_addr in
    let base = area_base (Block.of_value p |> Block.to_string) in
    let* () = disk_write base (Block.of_value v1) in
    let* () = disk_write (base + 1) (Block.of_value v2) in
    let* () = unlock () in
    P.return V.unit

  let write_call_in_place v1 v2 =
    (Spec.call "pair_write" [ v1; v2 ], write_in_place v1 v2)

  (** Flip the pointer before filling the shadow area: readers (and crash
      states) see a half-written pair. *)
  let write_flip_first v1 v2 : (world, V.t) P.t =
    let* () = lock () in
    let* p = disk_read ptr_addr in
    let cur = Block.of_value p |> Block.to_string in
    let shadow = other_area cur in
    let base = area_base shadow in
    let* () = disk_write ptr_addr (Block.of_string shadow) in
    let* () = disk_write base (Block.of_value v1) in
    let* () = disk_write (base + 1) (Block.of_value v2) in
    let* () = unlock () in
    P.return V.unit

  let write_call_flip_first v1 v2 =
    (Spec.call "pair_write" [ v1; v2 ], write_flip_first v1 v2)
end
