(** A write-through cached disk block — the versioned-memory (§5.2) study:
    the cache is volatile, and recovery must repopulate it from disk before
    operations resume. *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog

type state = Disk.Block.t

val spec : state Spec.t

type world = {
  disk : Disk.Single_disk.t;
  cache : Disk.Block.t option;  (** volatile; [None] = not (re)populated *)
  locks : Disk.Locks.t;
}

val init_world : unit -> world
val crash_world : world -> world
val pp_world : world Fmt.t

val get_prog : (world, V.t) P.t
(** Serves from memory; undefined behaviour if the cache was never
    repopulated after a crash. *)

val put_prog : V.t -> (world, V.t) P.t
val recover_prog : (world, V.t) P.t

val get_call : Spec.call * (world, V.t) P.t
val put_call : V.t -> Spec.call * (world, V.t) P.t

val checker_config :
  ?max_crashes:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config

module Buggy : sig
  val put_no_cache_update : V.t -> (world, V.t) P.t
  val put_call_no_cache_update : V.t -> Spec.call * (world, V.t) P.t
  val recover_nop : (world, V.t) P.t
end
