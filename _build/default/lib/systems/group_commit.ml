(** Group commit (§9.1): transactions are buffered in memory and committed
    to the write-ahead log in batches, amortizing commit cost.  The price is
    visible in the specification: a crash may lose buffered-but-unflushed
    transactions.  The spec state is (durable pair, pending list) and the
    crash transition drops the pending list — "specifies when transactions
    can be lost".

    The durable layout reuses the WAL's (data pair, flag, log). *)

module V = Tslang.Value
module T = Tslang.Transition
module Spec = Tslang.Spec
module P = Sched.Prog
module Block = Disk.Block

(* ------------------------------------------------------------------ *)
(* Specification                                                        *)
(* ------------------------------------------------------------------ *)

type state = {
  durable : Block.t * Block.t;
  pending : (Block.t * Block.t) list;  (** newest last *)
}

let view st =
  match List.rev st.pending with last :: _ -> last | [] -> st.durable

let compare_pair (a1, b1) (a2, b2) =
  let c = Block.compare a1 a2 in
  if c <> 0 then c else Block.compare b1 b2

let spec : state Spec.t =
  let open T.Syntax in
  {
    Spec.name = "group-commit";
    init = { durable = (Block.zero, Block.zero); pending = [] };
    compare_state =
      (fun s1 s2 ->
        let c = compare_pair s1.durable s2.durable in
        if c <> 0 then c else List.compare compare_pair s1.pending s2.pending);
    pp_state =
      (fun ppf st ->
        let pair ppf (a, b) = Fmt.pf ppf "(%a, %a)" Block.pp a Block.pp b in
        Fmt.pf ppf "{durable=%a pending=[%a]}" pair st.durable
          (Fmt.list ~sep:Fmt.semi pair) st.pending);
    step =
      (fun op args ->
        match op, args with
        | "gc_write", [ v1; v2 ] ->
          let* () =
            T.modify (fun st ->
                { st with pending = st.pending @ [ (Block.of_value v1, Block.of_value v2) ] })
          in
          T.ret V.unit
        | "gc_flush", [] ->
          let* () = T.modify (fun st -> { durable = view st; pending = [] }) in
          T.ret V.unit
        | "gc_read", [] ->
          let* st = T.reads in
          let a, b = view st in
          T.ret (V.pair (Block.to_value a) (Block.to_value b))
        | _ -> invalid_arg "group-commit spec: unknown op");
    (* The defining feature: crashes may lose everything still buffered. *)
    crash = T.modify (fun st -> { st with pending = [] });
  }

(** The strict (wrong-for-group-commit) crash spec: nothing is ever lost.
    The checker must reject the implementation against this spec — that
    rejection is the experiment showing *why* the spec must admit loss. *)
let strict_spec : state Spec.t = { spec with crash = T.ret () }

(* ------------------------------------------------------------------ *)
(* World and implementation                                             *)
(* ------------------------------------------------------------------ *)

type world = {
  disk : Disk.Single_disk.t;
  buffer : (Block.t * Block.t) list;  (** volatile, newest last *)
  locks : Disk.Locks.t;
}

let init_world () =
  let disk = Disk.Single_disk.init Wal.disk_size in
  let disk = Disk.Single_disk.set disk Wal.flag_addr Wal.flag_empty in
  { disk; buffer = []; locks = Disk.Locks.empty }

let crash_world w = { w with buffer = []; locks = Disk.Locks.empty }

let pp_world ppf w =
  let pair ppf (a, b) = Fmt.pf ppf "(%a, %a)" Block.pp a Block.pp b in
  Fmt.pf ppf "%a buf=[%a] %a" Disk.Single_disk.pp w.disk
    (Fmt.list ~sep:Fmt.semi pair) w.buffer Disk.Locks.pp w.locks

let get_disk w = w.disk
let set_disk w disk = { w with disk }
let get_locks w = w.locks
let set_locks w locks = { w with locks }

let the_lock = 0
let lock () = Disk.Locks.acquire ~get:get_locks ~set:set_locks the_lock
let unlock () = Disk.Locks.release ~get:get_locks ~set:set_locks the_lock
let disk_read a = Disk.Single_disk.read ~get_disk a
let disk_write a b = Disk.Single_disk.write ~get_disk ~set_disk a b

open P.Syntax

(** Append to the in-memory buffer; acknowledged before anything is
    durable. *)
let write_prog v1 v2 : (world, V.t) P.t =
  let* () = lock () in
  let* () =
    P.write "buffer_append" (fun w ->
        { w with buffer = w.buffer @ [ (Block.of_value v1, Block.of_value v2) ] })
  in
  let* () = unlock () in
  P.return V.unit

(** Flush the whole buffer as one WAL transaction installing the newest
    pair (each transaction replaces the pair, so earlier buffered writes
    are absorbed). *)
let flush_prog : (world, V.t) P.t =
  let* () = lock () in
  let* buf = P.read "buffer_peek" (fun w -> V.bool (w.buffer <> [])) in
  let* () =
    if not (V.get_bool buf) then P.return ()
    else
      let* last =
        P.read "buffer_last" (fun w ->
            match List.rev w.buffer with
            | (a, b) :: _ -> V.pair (Block.to_value a) (Block.to_value b)
            | [] -> V.unit)
      in
      let va, vb = V.get_pair last in
      let b1 = Block.of_value va and b2 = Block.of_value vb in
      let* () = disk_write Wal.log0 b1 in
      let* () = disk_write Wal.log1 b2 in
      let* () = disk_write Wal.flag_addr Wal.flag_committed in
      let* () = disk_write Wal.data0 b1 in
      let* () = disk_write Wal.data1 b2 in
      let* () = disk_write Wal.flag_addr Wal.flag_empty in
      P.write "buffer_clear" (fun w -> { w with buffer = [] })
  in
  let* () = unlock () in
  P.return V.unit

let read_prog : (world, V.t) P.t =
  let* () = lock () in
  let* buffered =
    P.read "buffer_view" (fun w ->
        match List.rev w.buffer with
        | (a, b) :: _ -> V.some (V.pair (Block.to_value a) (Block.to_value b))
        | [] -> V.none)
  in
  let* result =
    match V.get_opt buffered with
    | Some pair -> P.return pair
    | None ->
      let* v1 = disk_read Wal.data0 in
      let* v2 = disk_read Wal.data1 in
      P.return (V.pair v1 v2)
  in
  let* () = unlock () in
  P.return result

(** Same recovery as the WAL: replay a committed flush. *)
let recover_prog : (world, V.t) P.t =
  let* f = disk_read Wal.flag_addr in
  if Block.equal (Block.of_value f) Wal.flag_committed then
    let* l1 = disk_read Wal.log0 in
    let* l2 = disk_read Wal.log1 in
    let* () = disk_write Wal.data0 (Block.of_value l1) in
    let* () = disk_write Wal.data1 (Block.of_value l2) in
    let* () = disk_write Wal.flag_addr Wal.flag_empty in
    P.return V.unit
  else P.return V.unit

(* ------------------------------------------------------------------ *)
(* Checker configuration                                                *)
(* ------------------------------------------------------------------ *)

let write_call v1 v2 = (Spec.call "gc_write" [ v1; v2 ], write_prog v1 v2)
let flush_call = (Spec.call "gc_flush" [], flush_prog)
let read_call = (Spec.call "gc_read" [], read_prog)

let checker_config ?(spec = spec) ?(max_crashes = 1) threads :
    (world, state) Perennial_core.Refinement.config =
  Perennial_core.Refinement.config ~spec ~init_world:(init_world ())
    ~crash_world ~pp_world ~threads ~recovery:recover_prog
    ~post:[ read_call ] ~max_crashes ()
