(** Group commit (§9.1): transactions buffer in memory and flush to the
    write-ahead log in batches.  The price shows in the specification: the
    crash transition drops the pending list — "specifies when transactions
    can be lost". *)

module V := Tslang.Value
module Spec := Tslang.Spec
module P := Sched.Prog

(** {1 Specification} *)

type state = {
  durable : Disk.Block.t * Disk.Block.t;
  pending : (Disk.Block.t * Disk.Block.t) list;  (** newest last *)
}

val view : state -> Disk.Block.t * Disk.Block.t
(** The pair a reader observes: the newest pending write, else durable. *)

val spec : state Spec.t
(** Crash drops [pending]. *)

val strict_spec : state Spec.t
(** The wrong-for-group-commit crash spec (nothing is ever lost); the
    checker must reject the implementation against it — the experiment
    showing why the spec must admit loss. *)

(** {1 World and implementation} *)

type world = {
  disk : Disk.Single_disk.t;
  buffer : (Disk.Block.t * Disk.Block.t) list;  (** volatile, newest last *)
  locks : Disk.Locks.t;
}

val init_world : unit -> world
val crash_world : world -> world
val pp_world : world Fmt.t

val write_prog : V.t -> V.t -> (world, V.t) P.t
(** Buffer only; acknowledged before anything is durable. *)

val flush_prog : (world, V.t) P.t
(** Commit the buffer as one WAL transaction installing the newest pair. *)

val read_prog : (world, V.t) P.t
val recover_prog : (world, V.t) P.t

(** {1 Checker plumbing} *)

val write_call : V.t -> V.t -> Spec.call * (world, V.t) P.t
val flush_call : Spec.call * (world, V.t) P.t
val read_call : Spec.call * (world, V.t) P.t

val checker_config :
  ?spec:state Spec.t ->
  ?max_crashes:int ->
  (Spec.call * (world, V.t) P.t) list list ->
  (world, state) Perennial_core.Refinement.config
