(** The Perennial proof of the write-ahead log, as checkable outlines.

    This is the proof the paper highlights for recovery helping (§9.1): a
    transaction deposits its [j ⤇ log_write(v1,v2)] token into the crash
    invariant when it sets the commit flag, and whoever clears the flag —
    the writer itself, or recovery after a crash — simulates the operation.

    The crash invariant has four disjuncts tracking the commit protocol:
    - [E]   flag "e": the data pair matches the abstract state;
    - [C0]  flag "c": log holds (l0,l1), a helping token is stored, the
            data pair is untouched and still matches the abstract state;
    - [C1]  as [C0] but data block 0 already carries l0;
    - [C2]  as [C0] but both data blocks carry the log values.

    The lock invariant additionally pins the flag to "e" whenever the lock
    is free, which is what lets every outline cut the impossible disjuncts
    by constant disagreement — no [Case_eq] needed here. *)

module A = Seplogic.Assertion
module Sv = Seplogic.Sval
module Pu = Seplogic.Pure
module O = Perennial_core.Outline
module V = Tslang.Value

let l_data0 = "data0"
let l_data1 = "data1"
let l_flag = "flag"
let l_log0 = "log0"
let l_log1 = "log1"
let c_p0 = "p0"
let c_p1 = "p1"
let s_e = Sv.str "e"
let s_c = Sv.str "c"

(* --- symbolic spec operations --- *)

let pair_read_op : O.sym_op =
  {
    O.op_name = "pair_read";
    sym_apply =
      (fun ~lookup args ->
        match args with
        | [] -> (
          match lookup c_p0, lookup c_p1 with
          | Some a, Some b -> Ok ([], Sv.pair a b)
          | _ -> Error "abstract pair not at hand")
        | _ -> Error "pair_read takes no arguments");
  }

let log_write_op : O.sym_op =
  {
    O.op_name = "log_write";
    sym_apply =
      (fun ~lookup:_ args ->
        match args with
        | [ v1; v2 ] -> Ok ([ (c_p0, v1); (c_p1, v2) ], Sv.unit)
        | _ -> Error "log_write expects two arguments");
  }

(* --- invariants --- *)

(** When the lock is free the flag is "e" and the holder-to-be gets leases
    on all five blocks. *)
let lock_inv : A.t =
  [
    A.heap
      [ A.lease l_data0 (Sv.var "a"); A.lease l_data1 (Sv.var "b");
        A.lease l_flag s_e; A.lease l_log0 (Sv.var "c"); A.lease l_log1 (Sv.var "d") ];
  ]

let crash_inv : A.t =
  let masters flag d0 d1 g0 g1 =
    [ A.master l_flag flag; A.master l_data0 d0; A.master l_data1 d1;
      A.master l_log0 g0; A.master l_log1 g1 ]
  in
  let committed d0 d1 =
    A.heap
      (masters s_c d0 d1 (Sv.var "l0") (Sv.var "l1")
      @ [ A.spec_cell c_p0 (Sv.var "x0"); A.spec_cell c_p1 (Sv.var "x1");
          A.spec_tok (Sv.var "jh") "log_write" [ Sv.var "l0"; Sv.var "l1" ] ])
  in
  [
    (* E: idle; data = abstract state, log contents irrelevant *)
    A.heap
      (masters s_e (Sv.var "x0") (Sv.var "x1") (Sv.var "g0") (Sv.var "g1")
      @ [ A.spec_cell c_p0 (Sv.var "x0"); A.spec_cell c_p1 (Sv.var "x1") ]);
    (* C0: committed, not yet applied *)
    committed (Sv.var "x0") (Sv.var "x1");
    (* C1: first data block applied *)
    committed (Sv.var "l0") (Sv.var "x1");
    (* C2: both applied, flag not yet cleared *)
    committed (Sv.var "l0") (Sv.var "l1");
  ]

let cinv = "wal"
let the_lock = 0

let system : O.system =
  {
    O.sys_name = "write-ahead-log";
    ops = [ pair_read_op; log_write_op ];
    crash_cells = (fun ~lookup:_ -> []);
    lock_invs = [ (the_lock, lock_inv) ];
    crash_invs = [ (cinv, crash_inv) ];
  }

(* --- outlines --- *)

let read_outline : O.op_outline =
  {
    O.o_op = "pair_read";
    o_args = [];
    o_ret = Sv.pair (Sv.var "x") (Sv.var "y");
    o_body =
      [
        O.Acquire the_lock;
        O.Read_durable { loc = l_data0; bind = "x" };
        O.Read_durable { loc = l_data1; bind = "y" };
        O.Open_inv
          { name = cinv; body = [ O.Simulate { op = "pair_read"; args = []; bind_ret = "r" } ] };
        O.Release the_lock;
      ];
  }

let write_outline : O.op_outline =
  let wr loc value = O.Open_inv { name = cinv; body = [ O.Write_durable { loc; value } ] } in
  {
    O.o_op = "log_write";
    o_args = [ Sv.var "v1"; Sv.var "v2" ];
    o_ret = Sv.unit;
    o_body =
      [
        O.Acquire the_lock;
        wr l_log0 (Sv.var "v1");
        wr l_log1 (Sv.var "v2");
        (* commit: deposit the helping token together with the flag write *)
        wr l_flag s_c;
        wr l_data0 (Sv.var "v1");
        wr l_data1 (Sv.var "v2");
        (* clear: take the token back and linearize *)
        O.Open_inv
          {
            name = cinv;
            body =
              [
                O.Write_durable { loc = l_flag; value = s_e };
                O.Simulate
                  { op = "log_write"; args = [ Sv.var "v1"; Sv.var "v2" ]; bind_ret = "r" };
              ];
          };
        O.Release the_lock;
      ];
  }

(** Recovery: synthesize leases; if the flag is committed, replay the log
    and simulate the stored token (helping); clear the flag. *)
let recovery_outline : O.recovery_outline =
  {
    O.r_body =
      [
        O.Synthesize l_data0;
        O.Synthesize l_data1;
        O.Synthesize l_flag;
        O.Synthesize l_log0;
        O.Synthesize l_log1;
        O.Read_durable { loc = l_flag; bind = "f" };
        O.Read_durable { loc = l_log0; bind = "r0" };
        O.Read_durable { loc = l_log1; bind = "r1" };
        O.Choice
          [
            (* committed: replay and complete the crashed transaction *)
            [
              O.Atomic [ O.Write_durable { loc = l_data0; value = Sv.var "r0" } ];
              O.Atomic [ O.Write_durable { loc = l_data1; value = Sv.var "r1" } ];
              O.Atomic
                [
                  O.Write_durable { loc = l_flag; value = s_e };
                  O.Simulate
                    { op = "log_write"; args = [ Sv.var "r0"; Sv.var "r1" ]; bind_ret = "hr" };
                ];
            ];
            (* idle: nothing to do *)
            [];
          ];
        O.Crash_step;
      ];
  }

let check () =
  O.check_system system
    ~op_outlines:[ read_outline; write_outline ]
    ~recovery:recovery_outline
