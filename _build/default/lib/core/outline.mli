(** The Perennial proof-outline checker: Table 1 as executable rules.

    An {e outline} is a proof script for one operation (or for recovery): a
    sequence of physical commands (lock, durable read/write, memory access)
    and ghost commands (open/close a crash invariant, simulate a spec step,
    synthesize a lease, take the spec crash step).  The checker executes the
    script symbolically over {!Seplogic.Assertion} heaps and enforces the
    paper's rules:

    - {b lease rule} (§5.3): a durable write needs both the master copy and
      the lease, and updates both; master and lease values agree (camera
      validity), saturated as pure facts;
    - {b lease synthesis} (§5.3): only recovery may mint a fresh lease, from
      a bare master copy;
    - {b crash invariants} (§5.1): opened only around a single physical
      step, re-established on close, durable-only contents;
    - {b versioned memory} (§5.2): recovery starts with every volatile
      capability gone, and the crash invariant must be re-establishable
      after every recovery step (idempotence, §5.5);
    - {b recovery helping} (§5.4): [j ⤇ op] tokens survive crashes inside
      crash invariants, and recovery may [Simulate] them;
    - {b refinement} (§4): [Simulate] consumes [j ⤇ op], steps the [σ]
      cells, and produces [j ⤇ ret v]; operation outlines must end owning
      [j ⤇ ret] at the declared return value.

    {!check_system} bundles the premises of the paper's Theorem 2; the
    {!Refinement} checker independently validates that theorem's
    conclusion on finite instances. *)

module A := Seplogic.Assertion
module Sv := Seplogic.Sval

(** {1 System description} *)

type sym_op = {
  op_name : string;
  sym_apply :
    lookup:(string -> Sv.t option) ->
    Sv.t list ->
    ((string * Sv.t) list * Sv.t, string) result;
      (** abstract transition on the [σ] cells: given the call's arguments
          and a reader for current cell values, return the cell updates and
          the return value (or an error for a malformed instantiation) *)
}

type system = {
  sys_name : string;
  ops : sym_op list;
  crash_cells : lookup:(string -> Sv.t option) -> (string * Sv.t) list;
      (** the spec crash transition, as cell updates (empty = crash loses
          nothing) *)
  lock_invs : (int * A.t) list;  (** lock id -> lock invariant *)
  crash_invs : (string * A.t) list;  (** named crash invariants *)
}

val find_op : system -> string -> sym_op option

(** {1 Outline language} *)

type cmd =
  | Acquire of int
  | Release of int
  | Write_durable of { loc : string; value : Sv.t }
  | Read_durable of { loc : string; bind : string }
  | Write_mem of { ptr : string; value : Sv.t }
  | Read_mem of { ptr : string; bind : string }
  | Alloc_mem of { ptr : string; value : Sv.t }
  | Open_inv of { name : string; body : cmd list }
      (** open a crash invariant around one atomic step *)
  | Atomic of cmd list
      (** group one physical step with its ghost steps (recovery) *)
  | Simulate of { op : string; args : Sv.t list; bind_ret : string }
      (** ghost: consume a matching [j ⤇ op] token, step the [σ] cells,
          produce [j ⤇ ret] *)
  | Crash_step  (** ghost: [⤇Crashing] to [⤇Done], applying [crash_cells] *)
  | Synthesize of string  (** ghost, recovery only: master -> master ∗ lease *)
  | Choice of cmd list list
      (** proof-level alternation: the first verifying alternative is used *)
  | Case_eq of Sv.t * Sv.t
      (** classical case split on value (dis)equality — picks the right
          invariant disjunct when guarded by a disequality (§5.4) *)
  | Assert_eq of Sv.t * Sv.t
      (** proof assertion: the pure facts must entail the equality; makes
          the wrong [Choice] alternative fail early *)

type op_outline = {
  o_op : string;
  o_args : Sv.t list;
  o_ret : Sv.t;
  o_body : cmd list;
}

type recovery_outline = { r_body : cmd list }

(** {1 Checking} *)

exception Reject of string

type report = { branches : int; cmds_checked : int }

val pp_report : report Fmt.t

type result = Accepted of report | Rejected of string

val pp_result : result Fmt.t

val check_op : system -> op_outline -> result
(** Check one operation outline: from [j ⤇ op(args)], through the body,
    to [j ⤇ ret] — the per-operation triple of Theorem 2. *)

val check_recovery : system -> recovery_outline -> result
(** Check the recovery outline: starting from the crash invariants' durable
    contents and [⤇Crashing], recovery must re-establish every crash and
    lock invariant and finish with [⤇Done] — the recovery triple plus the
    crash-invariance and idempotence side conditions of Theorem 2. *)

val check_system :
  system ->
  op_outlines:op_outline list ->
  recovery:recovery_outline ->
  (string * result) list
(** All of Theorem 2's premises for a system. *)
