module V = Tslang.Value
module Spec = Tslang.Spec

type ('w, 's) config = {
  spec : 's Spec.t;
  init_world : 'w;
  crash_world : 'w -> 'w;
  pp_world : 'w Fmt.t;
  threads : (Spec.call * ('w, V.t) Sched.Prog.t) list list;
  recovery : ('w, V.t) Sched.Prog.t;
  post : (Spec.call * ('w, V.t) Sched.Prog.t) list;
  max_crashes : int;
  step_budget : int;
  fail_on_deadlock : bool;
}

let config ~spec ~init_world ~crash_world ~pp_world ~threads ~recovery ?(post = [])
    ?(max_crashes = 1) ?(step_budget = 5_000_000) ?(fail_on_deadlock = true) () =
  {
    spec; init_world; crash_world; pp_world; threads; recovery; post; max_crashes;
    step_budget; fail_on_deadlock;
  }

type stats = {
  executions : int;
  steps : int;
  crashes_injected : int;
  vacuous : int;
  max_candidates : int;
}

let pp_stats ppf s =
  Fmt.pf ppf "executions=%d steps=%d crashes=%d vacuous=%d max_candidates=%d"
    s.executions s.steps s.crashes_injected s.vacuous s.max_candidates

type failure = { reason : string; trace : string list }

let pp_failure ppf f =
  Fmt.pf ppf "@[<v>refinement violated: %s@,trace:@,  @[<v>%a@]@]" f.reason
    (Fmt.list ~sep:Fmt.cut Fmt.string)
    f.trace

type result =
  | Refinement_holds of stats
  | Refinement_violated of failure * stats
  | Budget_exhausted of stats

(* Internal mutable counters; snapshotted into [stats] at the end. *)
type counters = {
  mutable c_executions : int;
  mutable c_steps : int;
  mutable c_crashes : int;
  mutable c_vacuous : int;
  mutable c_max_candidates : int;
}

let new_counters () =
  { c_executions = 0; c_steps = 0; c_crashes = 0; c_vacuous = 0; c_max_candidates = 0 }

let snapshot ctr =
  {
    executions = ctr.c_executions;
    steps = ctr.c_steps;
    crashes_injected = ctr.c_crashes;
    vacuous = ctr.c_vacuous;
    max_candidates = ctr.c_max_candidates;
  }

exception Violation of failure
exception Budget

(* A pending-or-linearized operation on the spec side.  [result = None]
   means not yet linearized. *)
type pending = { ptid : int; pcall : Spec.call; result : V.t option }

(* A linearization candidate: one way the spec could have explained the
   execution so far. *)
type 's cand = { st : 's; pend : pending list (* sorted by ptid *) }

(* A running thread: its current operation, its program position, and the
   operations it has yet to invoke. *)
type 'w live = {
  tid : int;
  call : Spec.call;
  prog : ('w, V.t) Sched.Prog.t;
  rest : (Spec.call * ('w, V.t) Sched.Prog.t) list;
}

(* Spec-level undefined behaviour reachable: obligations become vacuous. *)
exception Vacuous

(* ------------------------------------------------------------------ *)
(* Candidate tracking, shared by the exhaustive and randomized checkers *)
(* ------------------------------------------------------------------ *)

type 's tracker = {
  saturate : 's cand list -> 's cand list;
      (** close under linearizing any pending operation; raises [Vacuous]
          on reachable spec-level undefined behaviour *)
  add_pending : int -> Spec.call -> 's cand list -> 's cand list;
  respond : int -> V.t -> string list -> 's cand list -> 's cand list;
      (** filter candidates by an observed response; raises [Violation] *)
  crash_cands : string list -> 's cand list -> 's cand list;
      (** apply the atomic spec crash transition, dropping in-flight ops;
          raises [Violation] if unsatisfiable *)
}

let make_tracker (type s) (spec : s Spec.t) (ctr : counters) : s tracker =
  let compare_pending a b =
    let c = Int.compare a.ptid b.ptid in
    if c <> 0 then c
    else
      let c = String.compare a.pcall.Spec.op b.pcall.Spec.op in
      if c <> 0 then c
      else
        let c = List.compare V.compare a.pcall.Spec.args b.pcall.Spec.args in
        if c <> 0 then c else Option.compare V.compare a.result b.result
  in
  let compare_cand c1 c2 =
    let c = spec.Spec.compare_state c1.st c2.st in
    if c <> 0 then c else List.compare compare_pending c1.pend c2.pend
  in
  let dedup cands =
    let sorted = List.sort_uniq compare_cand cands in
    if List.length sorted > ctr.c_max_candidates then
      ctr.c_max_candidates <- List.length sorted;
    sorted
  in
  let saturate cands =
    let seen = ref (dedup cands) in
    let rec grow frontier =
      let fresh = ref [] in
      List.iter
        (fun c ->
          List.iter
            (fun p ->
              match p.result with
              | Some _ -> ()
              | None ->
                if Spec.op_has_undefined spec c.st p.pcall then raise Vacuous;
                List.iter
                  (fun (st', v) ->
                    let pend =
                      List.map
                        (fun q -> if q.ptid = p.ptid then { q with result = Some v } else q)
                        c.pend
                    in
                    let c' = { st = st'; pend } in
                    if
                      not
                        (List.exists (fun x -> compare_cand x c' = 0) !seen
                        || List.exists (fun x -> compare_cand x c' = 0) !fresh)
                    then fresh := c' :: !fresh)
                  (Spec.op_outcomes spec c.st p.pcall))
            c.pend)
        frontier;
      match !fresh with
      | [] -> ()
      | fs ->
        seen := dedup (fs @ !seen);
        grow fs
    in
    grow !seen;
    !seen
  in
  let add_pending tid call cands =
    List.map
      (fun c ->
        { c with
          pend =
            List.sort compare_pending
              ({ ptid = tid; pcall = call; result = None } :: c.pend)
        })
      cands
  in
  let respond tid v trace cands =
    let sat = saturate cands in
    let kept =
      List.filter_map
        (fun c ->
          match List.find_opt (fun p -> p.ptid = tid) c.pend with
          | Some { result = Some v'; _ } when V.equal v v' ->
            Some { c with pend = List.filter (fun p -> p.ptid <> tid) c.pend }
          | Some _ | None -> None)
        sat
    in
    match dedup kept with
    | [] ->
      raise
        (Violation
           {
             reason =
               Fmt.str "no linearization explains thread %d returning %a" tid V.pp v;
             trace = List.rev trace;
           })
    | cs -> cs
  in
  let crash_cands trace cands =
    let crashed =
      List.concat_map
        (fun c ->
          List.map (fun st' -> { st = st'; pend = [] }) (Spec.crash_outcomes spec c.st))
        cands
    in
    match dedup crashed with
    | [] ->
      raise
        (Violation
           { reason = "spec crash transition unsatisfiable"; trace = List.rev trace })
    | cs -> cs
  in
  { saturate; add_pending; respond; crash_cands }

(* ------------------------------------------------------------------ *)
(* The exhaustive checker                                               *)
(* ------------------------------------------------------------------ *)

let check (type w s) (cfg : (w, s) config) : result =
  let spec = cfg.spec in
  let ctr = new_counters () in
  let tk = make_tracker spec ctr in
  let next_tid = ref 0 in
  let fresh_tid () =
    let t = !next_tid in
    incr next_tid;
    t
  in

  (* Process all finished threads' responses eagerly, invoking each thread's
     next operation as the previous one completes. *)
  let rec settle lives cands trace =
    let rec find acc = function
      | [] -> None
      | ({ prog = Sched.Prog.Done v; _ } as l) :: rest -> Some (List.rev_append acc rest, l, v)
      | l :: rest -> find (l :: acc) rest
    in
    match find [] lives with
    | None -> (lives, cands, trace)
    | Some (others, l, v) ->
      let trace = Fmt.str "t%d: %a returns %a" l.tid Spec.pp_call l.call V.pp v :: trace in
      let cands = tk.respond l.tid v trace cands in
      (match l.rest with
      | [] -> settle others cands trace
      | (call', prog') :: rest' ->
        let tid = fresh_tid () in
        let live' = { tid; call = call'; prog = prog'; rest = rest' } in
        let trace = Fmt.str "t%d: invoke %a" tid Spec.pp_call call' :: trace in
        settle (live' :: others) (tk.add_pending tid call' cands) trace)
  in

  let bump_steps () =
    ctr.c_steps <- ctr.c_steps + 1;
    if ctr.c_steps > cfg.step_budget then raise Budget
  in

  (* A path that reaches spec-level undefined behaviour is vacuously
     correct: the spec constrains nothing for such clients (§8.3). *)
  let vacuous_ok f = try f () with Vacuous -> ctr.c_vacuous <- ctr.c_vacuous + 1 in

  (* Run the post-phase probe operations sequentially (exploring any
     nondeterminism in their actions), then count one finished execution. *)
  let rec run_post w cands trace = function
    | [] -> ctr.c_executions <- ctr.c_executions + 1
    | (call, prog) :: rest ->
      let tid = fresh_tid () in
      let cands = tk.add_pending tid call cands in
      let rec go w prog trace =
        match prog with
        | Sched.Prog.Done v ->
          let trace = Fmt.str "post t%d: %a returns %a" tid Spec.pp_call call V.pp v :: trace in
          vacuous_ok (fun () ->
              let cands = tk.respond tid v trace cands in
              run_post w cands trace rest)
        | Sched.Prog.Atomic { label; action; k } ->
          bump_steps ();
          (match action w with
          | Sched.Prog.Ub reason ->
            raise
              (Violation
                 {
                   reason = Fmt.str "post op hit undefined behaviour at %s: %s" label reason;
                   trace = List.rev trace;
                 })
          | Sched.Prog.Steps [] ->
            raise
              (Violation
                 { reason = Fmt.str "post op blocked at %s" label; trace = List.rev trace })
          | Sched.Prog.Steps outs ->
            List.iter (fun (w', v) -> go w' (k v) (Fmt.str "post: %s" label :: trace)) outs)
      in
      go w prog trace
  in

  (* After recovery completes: one atomic spec crash transition; all
     operations still in flight at the crash are dropped (those that
     linearized keep their effect in the candidate state). *)
  let finish_recovery w cands trace =
    run_post w (tk.crash_cands trace cands) trace cfg.post
  in

  (* Recovery runs single-threaded; it may crash and restart (idempotence,
     §5.5).  [crashes] counts injected crashes on this path. *)
  let rec run_recovery w cands crashes trace =
    let rec go w prog crashes trace =
      (* crash-during-recovery branch *)
      if crashes < cfg.max_crashes then begin
        ctr.c_crashes <- ctr.c_crashes + 1;
        run_recovery (cfg.crash_world w) cands (crashes + 1)
          ("CRASH (during recovery)" :: trace)
      end;
      match prog with
      | Sched.Prog.Done _ -> finish_recovery w cands trace
      | Sched.Prog.Atomic { label; action; k } ->
        bump_steps ();
        (match action w with
        | Sched.Prog.Ub reason ->
          raise
            (Violation
               {
                 reason = Fmt.str "recovery hit undefined behaviour at %s: %s" label reason;
                 trace = List.rev trace;
               })
        | Sched.Prog.Steps [] ->
          raise
            (Violation
               { reason = Fmt.str "recovery blocked at %s" label; trace = List.rev trace })
        | Sched.Prog.Steps outs ->
          List.iter
            (fun (w', v) -> go w' (k v) crashes (Fmt.str "recovery: %s" label :: trace))
            outs)
    in
    go w cfg.recovery crashes trace
  in

  (* Main exploration: interleave threads; crash at any point. *)
  let rec explore w lives cands crashes trace =
    match settle lives cands trace with
    | exception Vacuous -> ctr.c_vacuous <- ctr.c_vacuous + 1
    | lives, cands, trace ->
      (* crash branch: a crash may strike at any point, including after all
         operations completed (durability of acknowledged writes). *)
      if crashes < cfg.max_crashes then begin
        ctr.c_crashes <- ctr.c_crashes + 1;
        vacuous_ok (fun () ->
            let sat = tk.saturate cands in
            run_recovery (cfg.crash_world w) sat (crashes + 1) ("CRASH" :: trace))
      end;
      if lives = [] then run_post w cands trace cfg.post
      else begin
        (* schedule branches *)
        let ran = ref false in
        List.iteri
          (fun i l ->
            match l.prog with
            | Sched.Prog.Done _ -> assert false (* settled above *)
            | Sched.Prog.Atomic { label; action; k } ->
              (match action w with
              | Sched.Prog.Ub reason ->
                raise
                  (Violation
                     {
                       reason =
                         Fmt.str "thread %d hit undefined behaviour at %s: %s" l.tid label
                           reason;
                       trace = List.rev trace;
                     })
              | Sched.Prog.Steps [] -> () (* blocked *)
              | Sched.Prog.Steps outs ->
                ran := true;
                bump_steps ();
                List.iter
                  (fun (w', v) ->
                    let lives' =
                      List.mapi (fun j l' -> if i = j then { l' with prog = k v } else l') lives
                    in
                    explore w' lives' cands crashes (Fmt.str "t%d: %s" l.tid label :: trace))
                  outs))
          lives;
        if (not !ran) && cfg.fail_on_deadlock then
          raise
            (Violation
               {
                 reason =
                   Fmt.str "deadlock: threads %s all blocked"
                     (String.concat "," (List.map (fun l -> string_of_int l.tid) lives));
                 trace = List.rev trace;
               })
      end
  in

  let initial_lives, initial_cands =
    List.fold_left
      (fun (lives, cands) ops ->
        match ops with
        | [] -> (lives, cands)
        | (call, prog) :: rest ->
          let tid = fresh_tid () in
          ({ tid; call; prog; rest } :: lives, tk.add_pending tid call cands))
      ([], [ { st = spec.Spec.init; pend = [] } ])
      cfg.threads
  in
  match explore cfg.init_world (List.rev initial_lives) initial_cands 0 [] with
  | () -> Refinement_holds (snapshot ctr)
  | exception Violation f -> Refinement_violated (f, snapshot ctr)
  | exception Budget -> Budget_exhausted (snapshot ctr)

let check_exn cfg =
  match check cfg with
  | Refinement_holds stats -> stats
  | Refinement_violated (f, _) -> failwith (Fmt.str "%a" pp_failure f)
  | Budget_exhausted stats ->
    failwith (Fmt.str "refinement check exhausted budget (%a)" pp_stats stats)

(* ------------------------------------------------------------------ *)
(* The randomized checker                                               *)
(* ------------------------------------------------------------------ *)

(* One random walk through the schedule/outcome/crash space.  Same
   linearization bookkeeping as the exhaustive checker, but each choice
   point picks a single alternative.  Sound for bug-finding on instances
   too large to exhaust; a pass is evidence, not proof. *)
let check_random (type w s) ?(schedules = 200) ?(seed = 17) ?(crash_prob = 0.05)
    (cfg : (w, s) config) : result =
  let spec = cfg.spec in
  let ctr = new_counters () in
  let tk = make_tracker spec ctr in
  let rng = Random.State.make [| seed |] in
  let next_tid = ref 0 in
  let fresh_tid () =
    let t = !next_tid in
    incr next_tid;
    t
  in
  let bump_steps () =
    ctr.c_steps <- ctr.c_steps + 1;
    if ctr.c_steps > cfg.step_budget then raise Budget
  in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in

  (* run a single program to completion with random outcome choices *)
  let run_solo ~what w prog trace =
    let rec go w prog trace =
      match prog with
      | Sched.Prog.Done v -> (w, v, trace)
      | Sched.Prog.Atomic { label; action; k } ->
        bump_steps ();
        (match action w with
        | Sched.Prog.Ub reason ->
          raise
            (Violation
               {
                 reason = Fmt.str "%s hit undefined behaviour at %s: %s" what label reason;
                 trace = List.rev trace;
               })
        | Sched.Prog.Steps [] ->
          raise
            (Violation
               { reason = Fmt.str "%s blocked at %s" what label; trace = List.rev trace })
        | Sched.Prog.Steps outs ->
          let w', v = pick outs in
          go w' (k v) (Fmt.str "%s: %s" what label :: trace))
    in
    go w prog trace
  in

  let run_post w cands trace =
    let _, _ =
      List.fold_left
        (fun (w, cands) (call, prog) ->
          let tid = fresh_tid () in
          let cands = tk.add_pending tid call cands in
          let w, v, trace' = run_solo ~what:"post" w prog trace in
          let trace' = Fmt.str "post t%d: %a returns %a" tid Spec.pp_call call V.pp v :: trace' in
          (w, tk.respond tid v trace' cands))
        (w, cands) cfg.post
    in
    ctr.c_executions <- ctr.c_executions + 1
  in

  (* crash, then recovery (itself subject to random crashes), then the spec
     crash transition and the post probes *)
  let do_crash w cands crashes trace =
    ctr.c_crashes <- ctr.c_crashes + 1;
    let sat = tk.saturate cands in
    let rec recover w crashes trace =
      let rec go w prog trace =
        if crashes < cfg.max_crashes && Random.State.float rng 1.0 < crash_prob then
          recover (cfg.crash_world w) (crashes + 1) ("CRASH (during recovery)" :: trace)
        else
          match prog with
          | Sched.Prog.Done _ -> (w, trace)
          | Sched.Prog.Atomic { label; action; k } ->
            bump_steps ();
            (match action w with
            | Sched.Prog.Ub reason ->
              raise
                (Violation
                   {
                     reason =
                       Fmt.str "recovery hit undefined behaviour at %s: %s" label reason;
                     trace = List.rev trace;
                   })
            | Sched.Prog.Steps [] ->
              raise
                (Violation
                   { reason = Fmt.str "recovery blocked at %s" label; trace = List.rev trace })
            | Sched.Prog.Steps outs ->
              let w', v = pick outs in
              go w' (k v) (Fmt.str "recovery: %s" label :: trace))
      in
      go w cfg.recovery trace
    in
    let w, trace = recover (cfg.crash_world w) crashes ("CRASH" :: trace) in
    run_post w (tk.crash_cands trace sat) trace
  in

  let walk () =
    let lives, cands =
      List.fold_left
        (fun (lives, cands) ops ->
          match ops with
          | [] -> (lives, cands)
          | (call, prog) :: rest ->
            let tid = fresh_tid () in
            ({ tid; call; prog; rest } :: lives, tk.add_pending tid call cands))
        ([], [ { st = spec.Spec.init; pend = [] } ])
        cfg.threads
    in
    let rec main w lives cands crashes trace =
      (* settle finished threads first *)
      let rec settle lives cands trace =
        let rec find acc = function
          | [] -> None
          | ({ prog = Sched.Prog.Done v; _ } as l) :: rest ->
            Some (List.rev_append acc rest, l, v)
          | l :: rest -> find (l :: acc) rest
        in
        match find [] lives with
        | None -> (lives, cands, trace)
        | Some (others, l, v) ->
          let trace =
            Fmt.str "t%d: %a returns %a" l.tid Spec.pp_call l.call V.pp v :: trace
          in
          let cands = tk.respond l.tid v trace cands in
          (match l.rest with
          | [] -> settle others cands trace
          | (call', prog') :: rest' ->
            let tid = fresh_tid () in
            let live' = { tid; call = call'; prog = prog'; rest = rest' } in
            settle (live' :: others) (tk.add_pending tid call' cands) trace)
      in
      let lives, cands, trace = settle lives cands trace in
      if lives = [] then
        if crashes < cfg.max_crashes && Random.State.float rng 1.0 < crash_prob then
          do_crash w cands crashes trace
        else run_post w cands trace
      else if crashes < cfg.max_crashes && Random.State.float rng 1.0 < crash_prob then
        do_crash w cands crashes trace
      else begin
        (* collect the runnable threads as commit closures (the step's
           payload type must not escape the match arm) *)
        let steppable =
          List.concat
            (List.mapi
               (fun i l ->
                 match l.prog with
                 | Sched.Prog.Done _ -> []
                 | Sched.Prog.Atomic { label; action; k } -> (
                   match action w with
                   | Sched.Prog.Ub reason ->
                     raise
                       (Violation
                          {
                            reason =
                              Fmt.str "thread %d hit undefined behaviour at %s: %s" l.tid
                                label reason;
                            trace = List.rev trace;
                          })
                   | Sched.Prog.Steps [] -> []
                   | Sched.Prog.Steps outs ->
                     [ (fun () ->
                         let w', v = pick outs in
                         let lives' =
                           List.mapi
                             (fun j l' -> if i = j then { l' with prog = k v } else l')
                             lives
                         in
                         (w', lives', Fmt.str "t%d: %s" l.tid label :: trace)) ]))
               lives)
        in
        match steppable with
        | [] ->
          if crashes < cfg.max_crashes then do_crash w cands crashes trace
          else if cfg.fail_on_deadlock then
            raise
              (Violation
                 {
                   reason =
                     Fmt.str "deadlock: threads %s all blocked"
                       (String.concat ","
                          (List.map (fun l -> string_of_int l.tid) lives));
                   trace = List.rev trace;
                 })
          else ()
        | _ ->
          bump_steps ();
          let w', lives', trace' = (pick steppable) () in
          main w' lives' cands crashes trace'
      end
    in
    main cfg.init_world (List.rev lives) cands 0 []
  in
  match
    for _ = 1 to schedules do
      try walk () with Vacuous -> ctr.c_vacuous <- ctr.c_vacuous + 1
    done
  with
  | () -> Refinement_holds (snapshot ctr)
  | exception Violation f -> Refinement_violated (f, snapshot ctr)
  | exception Budget -> Budget_exhausted (snapshot ctr)
