lib/core/outline.ml: Fmt List Printf Seplogic String
