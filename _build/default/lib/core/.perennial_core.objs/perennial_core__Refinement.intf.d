lib/core/refinement.mli: Fmt Sched Tslang
