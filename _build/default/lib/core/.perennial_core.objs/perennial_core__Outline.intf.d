lib/core/outline.mli: Fmt Seplogic
