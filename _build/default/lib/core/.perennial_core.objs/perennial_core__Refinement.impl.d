lib/core/refinement.ml: Fmt Int List Option Random Sched String Tslang
