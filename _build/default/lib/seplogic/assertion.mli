(** The assertion language of the outline checker: symbolic heaps in
    disjunctive normal form.

    An {!atom} is one capability (paper §4-§5); a {!heap} is a separating
    conjunction of atoms plus pure facts; a {!t} is a disjunction of heaps.
    Entailment ({!match_heap}) is syntactic up to directed unification:
    each pattern atom is matched by a distinct scrutinee atom, pattern
    variables are solved for, pattern pures must follow from scrutinee
    pures, and unmatched scrutinee atoms are the frame — the frame rule,
    operationally. *)

type crash_phase = Crashing | Done_crash

type atom =
  | Master of { loc : string; value : Sval.t }
      (** durable master copy [d[a] ↦ₙ v]; survives crashes *)
  | Lease of { loc : string; value : Sval.t }
      (** volatile lease [leaseₙ(d[a], v)]; invalidated by crashes *)
  | Pts of { ptr : string; value : Sval.t }  (** volatile memory [p ↦ₙ v] *)
  | Spec_cell of { key : string; value : Sval.t }
      (** one cell of the authoritative abstract state ([source σ]) *)
  | Spec_tok of { j : Sval.t; op : string; args : Sval.t list }
      (** [j ⤇ op]: a pending operation; durable — the basis of recovery
          helping (§5.4) *)
  | Spec_ret of { j : Sval.t; value : Sval.t }  (** [j ⤇ ret v] *)
  | Crash_tok of crash_phase  (** [⤇Crashing] / [⤇Done] (§5.5) *)
  | Tok of string  (** named volatile ghost token *)
  | Dtok of string  (** named durable ghost token *)

type heap = { atoms : atom list; pures : Pure.t list }

type t = heap list  (** disjunction *)

(** {1 Constructors} *)

val master : string -> Sval.t -> atom
val lease : string -> Sval.t -> atom
val pts : string -> Sval.t -> atom
val spec_cell : string -> Sval.t -> atom
val spec_tok : Sval.t -> string -> Sval.t list -> atom
val spec_ret : Sval.t -> Sval.t -> atom
val crash_tok : crash_phase -> atom
val tok : string -> atom
val dtok : string -> atom

val heap : ?pures:Pure.t list -> atom list -> heap
val emp : heap
val disj : heap list -> t
val star : heap -> heap -> heap

(** {1 Predicates} *)

val durable : atom -> bool
(** Does the atom survive a crash (§5.2)?  Masters, abstract state, pending
    spec tokens, crash tokens and durable ghost tokens do; memory, leases,
    receipts and volatile tokens do not. *)

val heap_invalid : heap -> bool
(** Two copies of the same exclusive capability can never be owned together
    (camera validity): such a heap describes an impossible state and proofs
    may treat it as vacuous. *)

(** {1 Printing} *)

val pp_phase : crash_phase Fmt.t
val pp_atom : atom Fmt.t
val pp_heap : heap Fmt.t
val pp : t Fmt.t

(** {1 Substitution and variables} *)

val apply_atom : Sval.Subst.t -> atom -> atom
val apply_heap : Sval.Subst.t -> heap -> heap
val apply : Sval.Subst.t -> t -> t
val vars_of_heap : heap -> string list

(** {1 Entailment with frame inference} *)

type match_result = { subst : Sval.Subst.t; frame : atom list }

val match_heap :
  ?rigid:string list -> scrutinee:heap -> pattern:heap -> unit -> match_result option
(** Find an injective matching of [pattern.atoms] into [scrutinee.atoms]
    and a substitution for pattern variables such that the pattern's pures
    (and residual matching obligations) follow from the scrutinee's pures;
    unmatched scrutinee atoms are the frame.  Pattern variables are
    existential except the [rigid] ones, which must be justified by the
    scrutinee's pure facts instead.  An inconsistent scrutinee entails
    anything. *)

val entails :
  ?rigid:string list -> scrutinee:heap -> pattern:t -> unit -> (int * match_result) option
(** First disjunct of [pattern] that [scrutinee] entails. *)

(** {1 Heap surgery (used by the outline checker's rules)} *)

val take_atom : (atom -> bool) -> heap -> (atom * heap) option
val add_atom : atom -> heap -> heap
val add_pure : Pure.t -> heap -> heap
val find_master : string -> heap -> Sval.t option
val find_lease : string -> heap -> Sval.t option
val find_pts : string -> heap -> Sval.t option
val find_spec_cell : string -> heap -> Sval.t option
