(** Pure (non-spatial) facts: equalities and disequalities over symbolic
    values, with a small congruence solver used by entailment.

    The solver builds equivalence classes from the hypothesis equalities
    (union-find over variables, constants as anchors, pairs componentwise,
    with an occurs check) and decides whether a goal fact is forced and
    whether the hypotheses are contradictory — an inconsistent disjunct of
    an assertion is unreachable and entails anything. *)

type t =
  | Eq of Sval.t * Sval.t
  | Neq of Sval.t * Sval.t

val eq : Sval.t -> Sval.t -> t
val neq : Sval.t -> Sval.t -> t
val pp : t Fmt.t
val apply : Sval.Subst.t -> t -> t

val inconsistent : t list -> bool

val entails : t list -> t -> bool
(** [entails hyps goal]: equality by congruence; disequality when the
    representatives are provably-distinct constants (for pairs, one
    distinct component suffices) or match a hypothesis disequality. *)

val entails_all : t list -> t list -> bool

val normalize : t list -> Sval.t -> Sval.t
(** Representative of a value under the hypotheses — reports the concrete
    value a variable was forced to. *)
