lib/seplogic/pure.mli: Fmt Sval
