lib/seplogic/assertion.ml: Fmt List Printf Pure String Sval Tslang
