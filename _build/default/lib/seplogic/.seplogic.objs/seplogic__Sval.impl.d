lib/seplogic/sval.ml: Fmt Map String Tslang
