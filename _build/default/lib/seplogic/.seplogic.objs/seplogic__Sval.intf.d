lib/seplogic/sval.mli: Fmt Tslang
