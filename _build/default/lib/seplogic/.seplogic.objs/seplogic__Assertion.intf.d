lib/seplogic/assertion.mli: Fmt Pure Sval
