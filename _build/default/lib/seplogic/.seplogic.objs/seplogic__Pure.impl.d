lib/seplogic/pure.ml: Fmt List Map String Sval Tslang
