(** Symbolic values for the proof-outline checker: a concrete
    {!Tslang.Value.t}, a logical variable, or a pair of symbolic values.
    Assertions quantify over unknown-but-fixed values through variables;
    entailment solves for them by directed matching. *)

type t =
  | Const of Tslang.Value.t
  | Var of string
  | Pair of t * t

val const : Tslang.Value.t -> t
val var : string -> t
val unit : t
val int : int -> t
val str : string -> t
val pair : t -> t -> t

val expand : t -> t
(** Canonical form: a concrete pair constant becomes a structural [Pair],
    so both spellings are the same value to the solver. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string

val vars : string list -> t -> string list
(** Accumulate the variables of a value (with duplicates). *)

(** Substitutions map variables to symbolic values. *)
module Subst : sig
  type sval := t
  type t

  val empty : t
  val find : string -> t -> sval option
  val add : string -> sval -> t -> t
  val bindings : t -> (string * sval) list
  val resolve : t -> sval -> sval
  val pp : t Fmt.t
end

val apply : Subst.t -> t -> t

val unify : Subst.t -> t -> t -> Subst.t option
(** Symmetric unification; [None] when structurally irreconcilable. *)

val match_directed :
  bindable:(string -> bool) ->
  Subst.t * (t * t) list ->
  t ->
  t ->
  (Subst.t * (t * t) list) option
(** Directed matching: only pattern variables satisfying [bindable] may be
    bound; everything else is rigid, and residual equalities are deferred
    as (pattern, scrutinee) obligations for the pure solver. *)
