(** Pure (non-spatial) facts: equalities and disequalities over symbolic
    values, with a small congruence solver used by entailment.

    The solver builds equivalence classes from the hypothesis equalities
    (union-find over variables, constants as class anchors, pairs treated
    componentwise) and answers:
    - [entails]: is a goal fact forced by the hypotheses?
    - [inconsistent]: do the hypotheses contradict themselves?  An
      inconsistent disjunct of an assertion is unreachable and entails
      anything. *)

module V = Tslang.Value

type t =
  | Eq of Sval.t * Sval.t
  | Neq of Sval.t * Sval.t

let eq a b = Eq (a, b)
let neq a b = Neq (a, b)

let pp ppf = function
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" Sval.pp a Sval.pp b
  | Neq (a, b) -> Fmt.pf ppf "%a ≠ %a" Sval.pp a Sval.pp b

let apply subst = function
  | Eq (a, b) -> Eq (Sval.apply subst a, Sval.apply subst b)
  | Neq (a, b) -> Neq (Sval.apply subst a, Sval.apply subst b)

(* --- solver --- *)

module Sm = Map.Make (String)

type classes = {
  parent : Sval.t Sm.t;  (** variable -> representative *)
  neqs : (Sval.t * Sval.t) list;
  contradiction : bool;
}

let rec rep classes sv =
  match Sval.expand sv with
  | Sval.Const v -> Sval.Const v
  | Sval.Pair (a, b) -> Sval.Pair (rep classes a, rep classes b)
  | Sval.Var x -> (
    match Sm.find_opt x classes.parent with
    | Some sv' when not (Sval.equal sv' (Sval.Var x)) -> rep classes sv'
    | _ -> Sval.Var x)

let rec union classes a b =
  if classes.contradiction then classes
  else
    let ra = rep classes a and rb = rep classes b in
    if Sval.equal ra rb then classes
    else
      match ra, rb with
      | Sval.Const x, Sval.Const y ->
        if V.equal x y then classes else { classes with contradiction = true }
      | Sval.Pair (a1, b1), Sval.Pair (a2, b2) -> union (union classes a1 a2) b1 b2
      | Sval.Const _, Sval.Pair _ | Sval.Pair _, Sval.Const _ ->
        { classes with contradiction = true }
      | Sval.Var x, other | other, Sval.Var x ->
        (* occurs check: x = ⟨..x..⟩ has no finite solution — contradiction *)
        if List.mem x (Sval.vars [] other) then { classes with contradiction = true }
        else { classes with parent = Sm.add x other classes.parent }

(* Are two representatives provably different, structurally?  For pairs, one
   provably-different component suffices. *)
let rec definitely_distinct a b =
  match a, b with
  | Sval.Const x, Sval.Const y -> not (V.equal x y)
  | Sval.Pair (a1, b1), Sval.Pair (a2, b2) ->
    definitely_distinct a1 a2 || definitely_distinct b1 b2
  | Sval.Const _, Sval.Pair _ | Sval.Pair _, Sval.Const _ -> true
  | (Sval.Var _ | Sval.Const _ | Sval.Pair _), _ -> false

let solve facts =
  let init = { parent = Sm.empty; neqs = []; contradiction = false } in
  let classes =
    List.fold_left
      (fun cl fact -> match fact with Eq (a, b) -> union cl a b | Neq _ -> cl)
      init facts
  in
  let neqs =
    List.filter_map
      (function Neq (a, b) -> Some (rep classes a, rep classes b) | Eq _ -> None)
      facts
  in
  let contradiction =
    classes.contradiction
    || List.exists (fun (a, b) -> Sval.equal (rep classes a) (rep classes b)) neqs
  in
  { classes with neqs; contradiction }

let inconsistent facts = (solve facts).contradiction

let entails hyps goal =
  let cl = solve hyps in
  if cl.contradiction then true
  else
    match goal with
    | Eq (a, b) -> Sval.equal (rep cl a) (rep cl b)
    | Neq (a, b) ->
      let ra = rep cl a and rb = rep cl b in
      definitely_distinct ra rb
      || List.exists
           (fun (n1, n2) ->
             (Sval.equal n1 ra && Sval.equal n2 rb)
             || (Sval.equal n1 rb && Sval.equal n2 ra))
           cl.neqs

let entails_all hyps goals = List.for_all (entails hyps) goals

(** Representative of a value under the hypotheses — used to report the
    concrete value a variable was forced to. *)
let normalize hyps sv = rep (solve hyps) sv
