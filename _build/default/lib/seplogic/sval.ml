(** Symbolic values for the proof-outline checker: a concrete
    {!Tslang.Value.t}, a logical variable, or a pair of symbolic values.
    Assertions in proof outlines quantify over unknown-but-fixed values (the
    contents read from disk, the value protected by a lock) through
    variables; entailment solves for them by unification.  Pairs let
    operations return tuples of symbolic components (e.g. a read of a pair
    of blocks). *)

module V = Tslang.Value

type t =
  | Const of V.t
  | Var of string
  | Pair of t * t

let const v = Const v
let var x = Var x
let unit = Const V.Unit
let int n = Const (V.int n)
let str s = Const (V.str s)
let pair a b = Pair (a, b)

(* Canonical form: concrete pairs are expanded into structural pairs so that
   [Const (V.Pair (a, b))] and [Pair (Const a, Const b)] are the same
   value to the solver. *)
let expand = function
  | Const (V.Pair (a, b)) -> Pair (Const a, Const b)
  | sv -> sv

let rec equal a b =
  match expand a, expand b with
  | Const x, Const y -> V.equal x y
  | Var x, Var y -> String.equal x y
  | Pair (a1, b1), Pair (a2, b2) -> equal a1 a2 && equal b1 b2
  | (Const _ | Var _ | Pair _), _ -> false

let rec compare a b =
  match expand a, expand b with
  | Const x, Const y -> V.compare x y
  | Var x, Var y -> String.compare x y
  | Pair (a1, b1), Pair (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2
  | Const _, (Var _ | Pair _) -> -1
  | Var _, Const _ -> 1
  | Var _, Pair _ -> -1
  | Pair _, (Const _ | Var _) -> 1

let rec pp ppf sv =
  match sv with
  | Const v -> V.pp ppf v
  | Var x -> Fmt.pf ppf "?%s" x
  | Pair (a, b) -> Fmt.pf ppf "⟨%a, %a⟩" pp a pp b

let to_string sv = Fmt.str "%a" pp sv

let rec vars acc = function
  | Const _ -> acc
  | Var x -> x :: acc
  | Pair (a, b) -> vars (vars acc a) b

(** Substitutions map variables to symbolic values. *)
module Subst = struct
  module Sm = Map.Make (String)

  type nonrec t = t Sm.t

  let empty = Sm.empty
  let find = Sm.find_opt
  let add = Sm.add
  let bindings = Sm.bindings

  let rec resolve subst sv =
    match expand sv with
    | Const v -> Const v
    | Pair (a, b) -> Pair (resolve subst a, resolve subst b)
    | Var x -> (
      match Sm.find_opt x subst with
      | Some sv' -> resolve subst sv'
      | None -> Var x)

  let pp ppf subst =
    let binding ppf (x, sv) = Fmt.pf ppf "?%s := %a" x pp sv in
    Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.comma binding) (Sm.bindings subst)
end

let apply subst sv = Subst.resolve subst sv

(** Unify two symbolic values under a substitution, extending it; [None] if
    they are structurally irreconcilable. *)
let rec unify subst a b =
  let a = Subst.resolve subst a and b = Subst.resolve subst b in
  match a, b with
  | Const x, Const y -> if V.equal x y then Some subst else None
  | Pair (a1, b1), Pair (a2, b2) -> (
    match unify subst a1 a2 with Some s -> unify s b1 b2 | None -> None)
  | Var x, other | other, Var x ->
    if equal (Var x) other then Some subst else Some (Subst.add x other subst)
  | Const _, Pair _ | Pair _, Const _ -> None

(** Directed matching: only *pattern* variables satisfying [bindable] may be
    bound; everything else on the scrutinee side is rigid.  Residual
    equalities that matching cannot decide structurally are deferred as
    proof obligations (checked against the pure hypotheses).  [None] only
    for structurally irreconcilable values. *)
let rec match_directed ~bindable (subst, obligations) pat scr =
  let pat = Subst.resolve subst pat and scr = expand scr in
  match pat, scr with
  | Const x, Const y -> if V.equal x y then Some (subst, obligations) else None
  | Pair (a1, b1), Pair (a2, b2) -> (
    match match_directed ~bindable (subst, obligations) a1 a2 with
    | Some acc -> match_directed ~bindable acc b1 b2
    | None -> None)
  | Var x, _ when bindable x && not (equal pat scr) ->
    Some (Subst.add x scr subst, obligations)
  | Const _, Pair _ | Pair _, Const _ -> None
  | _, _ ->
    if equal pat scr then Some (subst, obligations)
    else Some (subst, (pat, scr) :: obligations)
