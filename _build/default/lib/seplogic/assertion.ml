(** The assertion language of the outline checker: symbolic heaps in
    disjunctive normal form.

    An {!atom} is one capability (paper §4-§5): durable master copies,
    volatile leases and points-to facts, abstract-state cells (the [source σ]
    resource split per key), refinement tokens [j ⤇ op] / [j ⤇ ret v], the
    crash tokens [⤇Crashing]/[⤇Done], and named ghost tokens.  A {!heap} is
    a separating conjunction of atoms plus pure facts; an {!t} is a
    disjunction of heaps.

    Entailment ({!match_heap}) is syntactic up to unification: each pattern
    atom must be matched by a distinct scrutinee atom, pattern variables are
    solved for, pattern pures must follow from scrutinee pures, and the
    unmatched scrutinee atoms are returned as the frame — giving the frame
    rule operationally. *)

module V = Tslang.Value

type crash_phase = Crashing | Done_crash

type atom =
  | Master of { loc : string; value : Sval.t }
      (** durable master copy [d[a] ↦ₙ v]; survives crashes *)
  | Lease of { loc : string; value : Sval.t }
      (** volatile lease [leaseₙ(d[a], v)]; invalidated by crashes *)
  | Pts of { ptr : string; value : Sval.t }  (** volatile memory [p ↦ₙ v] *)
  | Spec_cell of { key : string; value : Sval.t }
      (** one cell of the authoritative abstract state ([source σ]) *)
  | Spec_tok of { j : Sval.t; op : string; args : Sval.t list }
      (** [j ⤇ op]: thread [j]'s pending operation; a ghost, survives crash
          (the basis of recovery helping, §5.4) *)
  | Spec_ret of { j : Sval.t; value : Sval.t }  (** [j ⤇ ret v] *)
  | Crash_tok of crash_phase  (** [⤇Crashing] / [⤇Done] (§5.5) *)
  | Tok of string  (** named volatile ghost token *)
  | Dtok of string  (** named durable ghost token *)

type heap = { atoms : atom list; pures : Pure.t list }

type t = heap list  (** disjunction *)

(* --- constructors --- *)

let master loc value = Master { loc; value }
let lease loc value = Lease { loc; value }
let pts ptr value = Pts { ptr; value }
let spec_cell key value = Spec_cell { key; value }
let spec_tok j op args = Spec_tok { j; op; args }
let spec_ret j value = Spec_ret { j; value }
let crash_tok phase = Crash_tok phase
let tok name = Tok name
let dtok name = Dtok name

let heap ?(pures = []) atoms = { atoms; pures }
let emp = { atoms = []; pures = [] }
let disj hs = hs
let star h1 h2 = { atoms = h1.atoms @ h2.atoms; pures = h1.pures @ h2.pures }

(* --- predicates --- *)

(** Does the atom survive a crash?  Masters, abstract state, pending spec
    tokens and durable ghost tokens do; memory, leases, receipts and
    volatile tokens do not (§5.2). *)
let durable = function
  | Master _ | Spec_cell _ | Spec_tok _ | Crash_tok _ | Dtok _ -> true
  | Lease _ | Pts _ | Spec_ret _ | Tok _ -> false

(** Structural invalidity: two copies of the same exclusive capability can
    never be owned together (camera validity), so a heap containing them
    describes an impossible state — proofs may treat it as vacuous. *)
let heap_invalid h =
  let rec dup = function
    | [] -> false
    | a :: rest ->
      let clash b =
        match a, b with
        | Master { loc = l1; _ }, Master { loc = l2; _ }
        | Lease { loc = l1; _ }, Lease { loc = l2; _ }
        | Pts { ptr = l1; _ }, Pts { ptr = l2; _ }
        | Spec_cell { key = l1; _ }, Spec_cell { key = l2; _ }
        | Tok l1, Tok l2
        | Dtok l1, Dtok l2 ->
          String.equal l1 l2
        | Crash_tok _, Crash_tok _ -> true
        | ( ( Master _ | Lease _ | Pts _ | Spec_cell _ | Spec_tok _ | Spec_ret _
            | Crash_tok _ | Tok _ | Dtok _ ),
            _ ) ->
          false
      in
      List.exists clash rest || dup rest
  in
  dup h.atoms

(* --- printing --- *)

let pp_phase ppf = function
  | Crashing -> Fmt.string ppf "⤇Crashing"
  | Done_crash -> Fmt.string ppf "⤇Done"

let pp_atom ppf = function
  | Master { loc; value } -> Fmt.pf ppf "%s ↦ %a" loc Sval.pp value
  | Lease { loc; value } -> Fmt.pf ppf "lease(%s, %a)" loc Sval.pp value
  | Pts { ptr; value } -> Fmt.pf ppf "%s ↦m %a" ptr Sval.pp value
  | Spec_cell { key; value } -> Fmt.pf ppf "σ[%s] = %a" key Sval.pp value
  | Spec_tok { j; op; args } ->
    Fmt.pf ppf "%a ⤇ %s(%a)" Sval.pp j op (Fmt.list ~sep:Fmt.comma Sval.pp) args
  | Spec_ret { j; value } -> Fmt.pf ppf "%a ⤇ ret %a" Sval.pp j Sval.pp value
  | Crash_tok phase -> pp_phase ppf phase
  | Tok name -> Fmt.pf ppf "tok(%s)" name
  | Dtok name -> Fmt.pf ppf "dtok(%s)" name

let pp_heap ppf { atoms; pures } =
  match atoms, pures with
  | [], [] -> Fmt.string ppf "emp"
  | _ ->
    let parts =
      List.map (Fmt.to_to_string pp_atom) atoms
      @ List.map (Fmt.to_to_string Pure.pp) pures
    in
    Fmt.pf ppf "@[<hov>%s@]" (String.concat " ∗ " parts)

let pp ppf = function
  | [] -> Fmt.string ppf "False"
  | [ h ] -> pp_heap ppf h
  | hs -> Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any "@,∨ ") pp_heap) hs

(* --- substitution --- *)

let apply_atom subst = function
  | Master { loc; value } -> Master { loc; value = Sval.apply subst value }
  | Lease { loc; value } -> Lease { loc; value = Sval.apply subst value }
  | Pts { ptr; value } -> Pts { ptr; value = Sval.apply subst value }
  | Spec_cell { key; value } -> Spec_cell { key; value = Sval.apply subst value }
  | Spec_tok { j; op; args } ->
    Spec_tok { j = Sval.apply subst j; op; args = List.map (Sval.apply subst) args }
  | Spec_ret { j; value } ->
    Spec_ret { j = Sval.apply subst j; value = Sval.apply subst value }
  | (Crash_tok _ | Tok _ | Dtok _) as a -> a

let apply_heap subst { atoms; pures } =
  { atoms = List.map (apply_atom subst) atoms; pures = List.map (Pure.apply subst) pures }

let apply subst hs = List.map (apply_heap subst) hs

(* --- variables --- *)

let vars_of_sval acc sv = Sval.vars acc sv

let vars_of_atom acc = function
  | Master { value; _ } | Lease { value; _ } | Pts { value; _ } | Spec_cell { value; _ } ->
    vars_of_sval acc value
  | Spec_tok { j; args; _ } -> List.fold_left vars_of_sval (vars_of_sval acc j) args
  | Spec_ret { j; value } -> vars_of_sval (vars_of_sval acc j) value
  | Crash_tok _ | Tok _ | Dtok _ -> acc

let vars_of_heap h =
  let acc = List.fold_left vars_of_atom [] h.atoms in
  let acc =
    List.fold_left
      (fun acc -> function
        | Pure.Eq (a, b) | Pure.Neq (a, b) -> vars_of_sval (vars_of_sval acc a) b)
      acc h.pures
  in
  List.sort_uniq String.compare acc

(* --- directed matching of atoms --- *)

(* Pattern variables are renamed to a reserved "$" namespace before matching
   so that only they may be bound; scrutinee variables are rigid and
   mismatches against them become pure proof obligations. *)
let bindable x = String.length x > 0 && x.[0] = '$'

let match_list acc xs ys =
  if List.length xs <> List.length ys then None
  else
    List.fold_left2
      (fun acc x y ->
        match acc with None -> None | Some a -> Sval.match_directed ~bindable a x y)
      (Some acc) xs ys

(** Attempt to match a pattern atom against a scrutinee atom, extending the
    substitution and obligation list. *)
let match_atom acc pat scr =
  match pat, scr with
  | Master { loc = l1; value = v1 }, Master { loc = l2; value = v2 }
  | Lease { loc = l1; value = v1 }, Lease { loc = l2; value = v2 }
  | Pts { ptr = l1; value = v1 }, Pts { ptr = l2; value = v2 }
  | Spec_cell { key = l1; value = v1 }, Spec_cell { key = l2; value = v2 } ->
    if String.equal l1 l2 then Sval.match_directed ~bindable acc v1 v2 else None
  | Spec_tok { j = j1; op = o1; args = a1 }, Spec_tok { j = j2; op = o2; args = a2 } ->
    if String.equal o1 o2 then
      match Sval.match_directed ~bindable acc j1 j2 with
      | Some a -> match_list a a1 a2
      | None -> None
    else None
  | Spec_ret { j = j1; value = v1 }, Spec_ret { j = j2; value = v2 } -> (
    match Sval.match_directed ~bindable acc j1 j2 with
    | Some a -> Sval.match_directed ~bindable a v1 v2
    | None -> None)
  | Crash_tok p1, Crash_tok p2 -> if p1 = p2 then Some acc else None
  | Tok n1, Tok n2 | Dtok n1, Dtok n2 -> if String.equal n1 n2 then Some acc else None
  | ( ( Master _ | Lease _ | Pts _ | Spec_cell _ | Spec_tok _ | Spec_ret _ | Crash_tok _
      | Tok _ | Dtok _ ),
      _ ) ->
    None

(* --- entailment with frame inference --- *)

type match_result = { subst : Sval.Subst.t; frame : atom list }

let freshen_counter = ref 0

(** Rename a heap's variables into the reserved bindable namespace (except
    the [rigid] ones), returning the renamed heap and the renaming
    (original -> fresh var). *)
let freshen_heap ?(rigid = []) h =
  incr freshen_counter;
  let tag = Printf.sprintf "$%d_" !freshen_counter in
  let renaming =
    List.fold_left
      (fun s x ->
        if List.mem x rigid then s else Sval.Subst.add x (Sval.Var (tag ^ x)) s)
      Sval.Subst.empty (vars_of_heap h)
  in
  (apply_heap renaming h, renaming)

(** [match_heap ~scrutinee ~pattern] finds an injective matching of
    [pattern.atoms] into [scrutinee.atoms] and a substitution for pattern
    variables such that [pattern.pures] (and the residual matching
    obligations) follow from [scrutinee.pures]; unmatched scrutinee atoms
    are the frame.  Pattern variables are treated as existentials; the
    returned substitution is keyed by the pattern's *original* variable
    names.  Returns the first solution. *)
let match_heap ?(rigid = []) ~scrutinee ~pattern () =
  if Pure.inconsistent scrutinee.pures then
    (* An inconsistent hypothesis entails anything with an empty frame. *)
    Some { subst = Sval.Subst.empty; frame = [] }
  else
    let fresh_pattern, renaming = freshen_heap ~rigid pattern in
    let check_pures subst obls =
      let goals =
        List.map (fun (a, b) -> Pure.Eq (Sval.apply subst a, b)) obls
        @ List.map (Pure.apply subst) fresh_pattern.pures
      in
      Pure.entails_all scrutinee.pures goals
    in
    let rec go subst obls pat_atoms avail =
      match pat_atoms with
      | [] -> if check_pures subst obls then Some (subst, avail) else None
      | p :: rest ->
        let rec try_each before = function
          | [] -> None
          | s :: after -> (
            match match_atom (subst, obls) (apply_atom subst p) s with
            | Some (subst', obls') -> (
              match go subst' obls' rest (List.rev_append before after) with
              | Some _ as r -> r
              | None -> try_each (s :: before) after)
            | None -> try_each (s :: before) after)
        in
        try_each [] avail
    in
    match go Sval.Subst.empty [] fresh_pattern.atoms scrutinee.atoms with
    | Some (subst, frame) ->
      (* Compose: original var -> fresh var -> solution. *)
      let original =
        List.fold_left
          (fun s (x, fresh) -> Sval.Subst.add x (Sval.apply subst fresh) s)
          Sval.Subst.empty
          (Sval.Subst.bindings renaming)
      in
      Some { subst = original; frame }
    | None -> None

(** [entails ~scrutinee ~pattern]: does one heap entail a DNF assertion
    (some disjunct matches)?  Returns the matching disjunct index and
    result. *)
let entails ?(rigid = []) ~scrutinee ~(pattern : t) () =
  let rec go i = function
    | [] -> None
    | d :: rest -> (
      match match_heap ~rigid ~scrutinee ~pattern:d () with
      | Some r -> Some (i, r)
      | None -> go (i + 1) rest)
  in
  go 0 pattern

(* --- helpers for the checker --- *)

(** Remove exactly one occurrence of an atom matching [pred]. *)
let take_atom pred h =
  let rec go before = function
    | [] -> None
    | a :: rest ->
      if pred a then Some (a, { h with atoms = List.rev_append before rest })
      else go (a :: before) rest
  in
  go [] h.atoms

let add_atom a h = { h with atoms = a :: h.atoms }
let add_pure p h = { h with pures = p :: h.pures }

(** Value held at a durable location (master), normalized by the pures. *)
let find_master loc h =
  List.find_map
    (function
      | Master { loc = l; value } when String.equal l loc ->
        Some (Pure.normalize h.pures value)
      | _ -> None)
    h.atoms

let find_lease loc h =
  List.find_map
    (function
      | Lease { loc = l; value } when String.equal l loc ->
        Some (Pure.normalize h.pures value)
      | _ -> None)
    h.atoms

let find_pts ptr h =
  List.find_map
    (function
      | Pts { ptr = p; value } when String.equal p ptr ->
        Some (Pure.normalize h.pures value)
      | _ -> None)
    h.atoms

let find_spec_cell key h =
  List.find_map
    (function
      | Spec_cell { key = k; value } when String.equal k key ->
        Some (Pure.normalize h.pures value)
      | _ -> None)
    h.atoms
