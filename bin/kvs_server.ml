(* kvs_server: an interactive front end for the journaled transactional
   key-value store (Journal.Kvs).

   Commands on stdin (`kvs_server repl`):

     GET <k>              read a key
     PUT <k> <v>          durable put (commits a journal transaction)
     TXN <k>=<v> ...      durable multi-key transaction, all or nothing
     ASYNC <k> <v>        buffered put: acked now, durable at next FLUSH
     FLUSH                group-commit the buffer as one transaction
     CRASH                simulate a crash (buffer and locks vanish)
     RECOVER              run journal recovery (replays a committed txn)
     DUMP                 print every key
     QUIT                 exit

   The command interpreter lives in Journal.Kvs_repl (so the test suite can
   drive it); it never raises on malformed or oversized input — every bad
   line gets an `ERR ...` response and the session keeps going.  With
   `--timeout-ms N`, a command whose backend program runs away (a degraded
   fault-tolerant path spinning through retries) answers `ERR timeout`
   with the store untouched instead of hanging the session.

   `kvs_server demo` (the default) runs a scripted session showing the
   durable path, the group-commit loss window, and recovery. *)

module Repl = Journal.Kvs_repl

let repl ?timeout_ms () =
  let t = Repl.create ?timeout_ms () in
  print_endline ("journaled kvs ready (" ^ Repl.help ^ ")");
  try
    while true do
      let line = input_line stdin in
      List.iter print_endline (Repl.exec_line t line)
    done
  with End_of_file | Repl.Quit -> ()

let demo () =
  let t = Repl.create () in
  let script =
    [ "PUT 0 alpha"; "GET 0"; "TXN 1=beta 2=gamma"; "DUMP"; "ASYNC 3 delta"; "GET 3";
      "CRASH"; "RECOVER"; "GET 3"; "GET 1"; "DUMP" ]
  in
  List.iter
    (fun line ->
      Printf.printf "> %s\n" line;
      List.iter print_endline (Repl.exec_line t line))
    script;
  print_endline "(note GET 3 after the crash: the buffered put was lost — the";
  print_endline " group-commit window the KVS spec makes explicit)"

let usage () =
  prerr_endline "usage: kvs_server [demo|repl] [--metrics] [--timeout-ms N]";
  exit 2

(* --timeout-ms N: per-command budget for the repl; a command that blows it
   answers `ERR timeout` instead of hanging the session (see Kvs_repl) *)
let rec split_timeout acc = function
  | [] -> (None, List.rev acc)
  | "--timeout-ms" :: n :: rest -> (
    match int_of_string_opt n with
    | Some ms when ms >= 0 -> (Some ms, List.rev_append acc rest)
    | Some _ | None ->
      prerr_endline "kvs_server: --timeout-ms wants a non-negative integer";
      usage ())
  | [ "--timeout-ms" ] ->
    prerr_endline "kvs_server: --timeout-ms wants a value";
    usage ()
  | a :: rest -> split_timeout (a :: acc) rest

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let metrics = List.mem "--metrics" args in
  let args = List.filter (fun a -> a <> "--metrics") args in
  let timeout_ms, args = split_timeout [] args in
  let mode = match args with m :: _ -> m | [] -> "demo" in
  (match mode with
  | "demo" -> demo ()
  | "repl" -> repl ?timeout_ms ()
  | _ -> usage ());
  if metrics then Fmt.pr "@.Metrics:@.%a" (Obs.Metrics.pp ?registry:None) ()
