(* kvs_server: an interactive front end for the journaled transactional
   key-value store (Journal.Kvs).

   Commands on stdin (`kvs_server repl`):

     GET <k>              read a key
     PUT <k> <v>          durable put (commits a journal transaction)
     TXN <k>=<v> ...      durable multi-key transaction, all or nothing
     ASYNC <k> <v>        buffered put: acked now, durable at next FLUSH
     FLUSH                group-commit the buffer as one transaction
     CRASH                simulate a crash (buffer and locks vanish)
     RECOVER              run journal recovery (replays a committed txn)
     DUMP                 print every key
     QUIT                 exit

   `kvs_server demo` (the default) runs a scripted session showing the
   durable path, the group-commit loss window, and recovery. *)

module K = Journal.Kvs
module V = Tslang.Value
module Block = Disk.Block

let p = K.params ~n_keys:8 ()

let world = ref (K.init_world p)

let run prog =
  let w, v = Sched.Runner.run1 !world prog in
  world := w;
  v

let in_bounds k = k >= 0 && k < p.K.n_keys

let dump () =
  List.init p.K.n_keys (fun k ->
      let v = run (K.get_prog p k) in
      Printf.sprintf "  %d -> %s" k (Block.to_string (Block.of_value v)))

let exec_line line : string list =
  let words = String.split_on_char ' ' (String.trim line) in
  let words = List.filter (fun w -> w <> "") words in
  let key s = match int_of_string_opt s with Some k when in_bounds k -> Some k | _ -> None in
  match words with
  | [] -> []
  | cmd :: args -> (
    match String.uppercase_ascii cmd, args with
    | "GET", [ k ] -> (
      match key k with
      | Some k -> [ Block.to_string (Block.of_value (run (K.get_prog p k))) ]
      | None -> [ "ERR bad key" ])
    | "PUT", [ k; v ] -> (
      match key k with
      | Some k ->
        ignore (run (K.put_prog p k (V.str v)));
        [ "OK durable" ]
      | None -> [ "ERR bad key" ])
    | "ASYNC", [ k; v ] -> (
      match key k with
      | Some k ->
        ignore (run (K.put_async_prog p k (V.str v)));
        [ "OK buffered" ]
      | None -> [ "ERR bad key" ])
    | "TXN", (_ :: _ as pairs) -> (
      let parse pair =
        match String.index_opt pair '=' with
        | Some i ->
          let k = String.sub pair 0 i in
          let v = String.sub pair (i + 1) (String.length pair - i - 1) in
          Option.map (fun k -> (k, Block.of_string v)) (key k)
        | None -> None
      in
      let entries = List.map parse pairs in
      if List.exists Option.is_none entries then [ "ERR usage: TXN k=v [k=v ...]" ]
      else
        let entries = List.filter_map Fun.id entries in
        if List.length entries > p.K.max_slots then [ "ERR transaction too large" ]
        else begin
          ignore (run (K.txn_prog p entries));
          [ Printf.sprintf "OK committed %d keys" (List.length entries) ]
        end)
    | "FLUSH", [] ->
      ignore (run (K.flush_prog p));
      [ "OK flushed" ]
    | "CRASH", [] ->
      world := K.crash_world !world;
      [ "OK crashed (buffer lost)" ]
    | "RECOVER", [] ->
      ignore (run (K.recover p));
      [ "OK recovered" ]
    | "DUMP", [] -> dump ()
    | "QUIT", [] -> raise End_of_file
    | _ -> [ "ERR unknown command" ])

let repl () =
  print_endline "journaled kvs ready (GET/PUT/TXN/ASYNC/FLUSH/CRASH/RECOVER/DUMP/QUIT)";
  try
    while true do
      let line = input_line stdin in
      List.iter print_endline (exec_line line)
    done
  with End_of_file -> ()

let demo () =
  let script =
    [ "PUT 0 alpha"; "GET 0"; "TXN 1=beta 2=gamma"; "DUMP"; "ASYNC 3 delta"; "GET 3";
      "CRASH"; "RECOVER"; "GET 3"; "GET 1"; "DUMP" ]
  in
  List.iter
    (fun line ->
      Printf.printf "> %s\n" line;
      List.iter print_endline (exec_line line))
    script;
  print_endline "(note GET 3 after the crash: the buffered put was lost — the";
  print_endline " group-commit window the KVS spec makes explicit)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let metrics = List.mem "--metrics" args in
  let args = List.filter (fun a -> a <> "--metrics") args in
  let mode = match args with m :: _ -> m | [] -> "demo" in
  (match mode with
  | "demo" -> demo ()
  | "repl" -> repl ()
  | _ ->
    prerr_endline "usage: kvs_server [demo|repl] [--metrics]";
    exit 2);
  if metrics then Fmt.pr "@.Metrics:@.%a" (Obs.Metrics.pp ?registry:None) ()
