(* mailboat_server: a demo driver for the Mailboat mail server with its
   SMTP and POP3 front ends.

   - `mailboat_server demo`  runs a scripted SMTP delivery followed by a
     POP3 retrieval and prints the dialogue;
   - `mailboat_server smtp`  reads SMTP commands from stdin;
   - `mailboat_server pop3`  reads POP3 commands from stdin. *)

let demo () =
  let server = Mailboat.Server.create ~kind:Mailboat.Server.Mailboat_server ~users:4 () in
  let show who lines = List.iter (fun l -> Printf.printf "%s %s\n" who l) lines in
  print_endline "--- SMTP session ---";
  let smtp = Mailboat.Smtp.create server in
  show "S:" [ Mailboat.Smtp.banner ];
  List.iter
    (fun line ->
      Printf.printf "C: %s\n" line;
      show "S:" (Mailboat.Smtp.input smtp line))
    [ "HELO example.org"; "MAIL FROM:<alice@example.org>"; "RCPT TO:<user2@mailboat>";
      "DATA"; "Subject: hello"; ""; "Grace under pressure."; "."; "QUIT" ];
  print_endline "--- POP3 session ---";
  let pop = Mailboat.Pop3.create server in
  show "S:" [ Mailboat.Pop3.banner ];
  List.iter
    (fun line ->
      Printf.printf "C: %s\n" line;
      show "S:" (Mailboat.Pop3.input pop line))
    [ "USER user2"; "PASS anything"; "STAT"; "LIST"; "RETR 1"; "DELE 1"; "QUIT" ];
  print_endline "--- crash + recovery ---";
  Mailboat.Server.crash server;
  Mailboat.Server.recover server;
  Printf.printf "spool after recovery: %d entries\n"
    (List.length (Gfs.Tmpfs.list_dir server.Mailboat.Server.fs "spool"))

let interact mk_input banner =
  let session_input = mk_input () in
  print_endline banner;
  try
    while true do
      let line = input_line stdin in
      List.iter print_endline (session_input line)
    done
  with End_of_file -> ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let metrics = List.mem "--metrics" args in
  let args = List.filter (fun a -> a <> "--metrics") args in
  let mode = match args with m :: _ -> m | [] -> "demo" in
  (match mode with
  | "demo" -> demo ()
  | "smtp" ->
    let server = Mailboat.Server.create ~kind:Mailboat.Server.Mailboat_server ~users:100 () in
    interact (fun () -> Mailboat.Smtp.input (Mailboat.Smtp.create server)) Mailboat.Smtp.banner
  | "pop3" ->
    let server = Mailboat.Server.create ~kind:Mailboat.Server.Mailboat_server ~users:100 () in
    interact (fun () -> Mailboat.Pop3.input (Mailboat.Pop3.create server)) Mailboat.Pop3.banner
  | _ ->
    prerr_endline "usage: mailboat_server [demo|smtp|pop3] [--metrics]";
    exit 2);
  if metrics then Fmt.pr "@.Metrics:@.%a" (Obs.Metrics.pp ?registry:None) ()
