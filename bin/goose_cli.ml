(* The goose translator executable (§7): read a Go source file, check that
   it is within the Goose subset, and emit the Perennial (Coq-flavoured)
   model, exactly like the paper's `goose` tool.

   Usage: goose_cli FILE.go [--ast] [--metrics]
   (translate, or dump the AST; --metrics prints the Obs.Metrics registry
   afterwards — interpreter counters populate it when the model is run) *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let dump_ast (file : Goose.Ast.file) =
  Printf.printf "package %s\n" file.package;
  List.iter (fun i -> Printf.printf "import %S\n" i) file.imports;
  List.iter
    (fun (s : Goose.Ast.struct_decl) ->
      Printf.printf "struct %s (%d fields)\n" s.sname (List.length s.sfields))
    file.structs;
  List.iter
    (fun (f : Goose.Ast.func_decl) ->
      Printf.printf "func %s/%d -> %s\n" f.fname (List.length f.params)
        (String.concat ", " (List.map (Fmt.to_to_string Goose.Ast.pp_typ) f.results)))
    file.funcs

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let metrics = List.mem "--metrics" args in
  let args = List.filter (fun a -> a <> "--metrics") args in
  (match args with
  | path :: rest ->
    let src = read_file path in
    if List.mem "--ast" rest then (
      match Goose.Parser.parse_file src with
      | file ->
        Goose.Typecheck.check_file file;
        dump_ast file
      | exception Goose.Lexer.Lex_error { line; message } ->
        Printf.eprintf "%s:%d: lex error: %s\n" path line message;
        exit 1
      | exception Goose.Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: parse error: %s\n" path line message;
        exit 1)
    else (
      match Goose.Translate.translate src with
      | Ok coq -> print_string coq
      | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 1)
  | _ ->
    prerr_endline "usage: goose_cli FILE.go [--ast] [--metrics]";
    exit 2);
  if metrics then Fmt.pr "@.Metrics:@.%a" (Obs.Metrics.pp ?registry:None) ()
