(* perennial_check: run every verification artifact in the repository and
   print a report — the outline proofs (Theorem 2's premises) and the
   exhaustive refinement checks (its conclusion) for each system.

   Usage: perennial_check [outlines|refinement|kvs|wal|fs|faults|net|strategies|all]
                          [--strategy naive|dpor|dpor+sleep]
                          [--faults N] [--max-seconds S]
                          [--domains N] [--fingerprint] [--symmetry]
                          [--trace FILE] [--metrics]
                          [--coverage] [--coverage-out FILE]
                          [--explain] [--progress]

   --trace FILE  write a Chrome trace_event JSON of the run (load it in
                 chrome://tracing or ui.perfetto.dev): span events for the
                 exploration/recovery/post phases, instant events for every
                 injected crash or fault.
   --metrics     print the metrics registry (counters, gauges, histograms
                 accumulated by the checkers) after the report.
   --coverage    enable the site registry: every crash point, fault point,
                 and spec arm the checks could exercise is registered, hits
                 are counted, and a coverage report (with the vacuity list
                 of never-exercised sites) is printed after the run.
   --coverage-out FILE  also write the perennial-coverage/v1 JSON report.
   --explain     record pruning provenance and print the ranked report of
                 which (rule, site) pairs the reduction skipped and why —
                 meaningful with --strategy dpor or dpor+sleep.
   --progress    print a live one-line progress status (execs/sec, frontier
                 depth, fault-schedule index, budget ETA) to stderr.
   --strategy    exploration strategy for the exhaustive checks (default
                 naive); the strategies selection cross-checks all of them
                 against each other and fails on any verdict mismatch or
                 pruning regression (DPOR exploring MORE than naive).
   --faults N    per-execution fault budget for the faults selection
                 (default 2): the checker enumerates every schedule of at
                 most N injected I/O faults alongside crash points.  The
                 net selection reuses it as the network-event budget,
                 capped at 1 (network schedules branch at every
                 send/recv, so larger budgets explode).
   --max-seconds S  wall-clock budget per exhaustive check; exceeding it
                 reports budget exhaustion instead of hanging.
   --domains N   run every exhaustive check on N domains (OCaml 5
                 multicore).  Verdicts, counterexamples and stats are
                 identical to the sequential run; only wall time changes.
   --fingerprint hash-consed state fingerprinting: prune subtrees whose
                 canonical state was already explored (naive strategy
                 only — the checker rejects it under dpor).
   --symmetry    additionally canonicalize interchangeable threads before
                 fingerprinting (implies --fingerprint). *)

module V = Tslang.Value
module R = Perennial_core.Refinement
module O = Perennial_core.Outline
module E = Perennial_core.Explore

let ok = ref 0
let failed = ref 0

(* --max-seconds: wall-clock budget applied to every exhaustive check *)
let max_secs : float option ref = ref None

(* --domains: run every exhaustive check on N domains (same verdicts and
   stats as sequential; see Refinement.check) *)
let domains : int option ref = ref None

(* --fingerprint / --symmetry: hash-consed state pruning (naive strategy) *)
let fingerprint = ref false
let symmetry = ref false

let rcheck ?faults ~strategy cfg =
  (* fingerprinting is naive-only; the strategies cross-check iterates all
     strategies, so apply it just to the naive runs there *)
  let fp = !fingerprint && strategy = E.Naive in
  R.check ~strategy ?faults ?max_seconds:!max_secs ?domains:!domains ~fingerprint:fp
    ~symmetry:(!symmetry && fp) cfg

let report name result =
  match result with
  | Ok detail ->
    incr ok;
    Printf.printf "  [OK]   %-50s %s\n%!" name detail
  | Error detail ->
    incr failed;
    Printf.printf "  [FAIL] %-50s %s\n%!" name detail

let outline_result = function
  | O.Accepted r -> Ok (Fmt.str "%a" O.pp_report r)
  | O.Rejected why -> Error why

let refinement_result = function
  | R.Refinement_holds stats -> Ok (Fmt.str "%a" R.pp_stats stats)
  | R.Refinement_violated (f, _) -> Error f.R.reason
  | R.Budget_exhausted stats -> Error (Fmt.str "budget exhausted (%a)" R.pp_stats stats)

let run_outlines () =
  print_endline "Proof outlines (premises of Theorem 2, per system):";
  List.iter
    (fun (name, r) -> report ("replicated-disk " ^ name) (outline_result r))
    (Systems.Rd_proof.check 2);
  List.iter
    (fun (name, r) -> report ("write-ahead-log " ^ name) (outline_result r))
    (Systems.Wal_proof.check ());
  List.iter
    (fun (name, r) -> report ("shadow-copy " ^ name) (outline_result r))
    (Systems.Shadow_proof.check ());
  List.iter
    (fun (name, r) -> report ("cached-block " ^ name) (outline_result r))
    (Systems.Cached_proof.check ())

let run_refinement ~strategy () =
  Printf.printf "Exhaustive concurrent-recovery-refinement checks [strategy=%s]:\n" (E.strategy_name strategy);
  let vx = V.str "x" and vy = V.str "y" in
  report "replicated-disk: 2 writers + crash + disk failure"
    (refinement_result
       (rcheck ~strategy
          (Systems.Replicated_disk.checker_config ~may_fail:true ~max_crashes:1 ~size:1
             [ [ Systems.Replicated_disk.write_call 0 vx ];
               [ Systems.Replicated_disk.write_call 0 vy ] ])));
  report "cached-block: put + get + crash (versioned memory)"
    (refinement_result
       (rcheck ~strategy
          (Systems.Cached_block.checker_config ~max_crashes:1
             [ [ Systems.Cached_block.put_call (V.str "x") ];
               [ Systems.Cached_block.get_call ] ])));
  report "shadow-copy: writer + reader + crash"
    (refinement_result
       (rcheck ~strategy
          (Systems.Shadow_copy.checker_config ~max_crashes:1
             [ [ Systems.Shadow_copy.write_call vx vy ]; [ Systems.Shadow_copy.read_call ] ])));
  report "write-ahead-log: writer + crash during recovery"
    (refinement_result
       (rcheck ~strategy (Systems.Wal.checker_config ~max_crashes:2 [ [ Systems.Wal.write_call vx vy ] ])));
  report "group-commit: write+flush + crash (lossy spec)"
    (refinement_result
       (rcheck ~strategy
          (Systems.Group_commit.checker_config ~max_crashes:1
             [ [ Systems.Group_commit.write_call vx vy; Systems.Group_commit.flush_call ] ])));
  report "mailboat: deliver + crash + recovery"
    (refinement_result
       (rcheck ~strategy
          (Mailboat.Core.checker_config ~users:1 ~max_crashes:1
             [ [ Mailboat.Core.deliver_call 0 "ab" ] ])));
  report "mailboat: fsync deliver under deferred durability"
    (refinement_result
       (rcheck ~strategy
          (Mailboat.Core.checker_config ~users:1 ~max_crashes:1 ~durability:`Deferred
             [ [ Mailboat.Core.deliver_fsync_call 0 "ab" ] ])));
  report "layered: WAL over replicated disk + crash + disk failure"
    (refinement_result
       (rcheck ~strategy
          (Systems.Layered.checker_config ~may_fail:true ~max_crashes:1
             [ [ Systems.Layered.write_call (V.str "x") (V.str "y") ] ])));
  report "mailboat: randomized check, larger instance"
    (refinement_result
       (R.check_random ~schedules:100 ~crash_prob:0.05
          (Mailboat.Core.checker_config ~users:2 ~max_crashes:1
             [ [ Mailboat.Core.deliver_call 0 "ab"; Mailboat.Core.deliver_call 0 "cd" ];
               [ Mailboat.Core.deliver_call 1 "ef" ];
               [ Mailboat.Core.pickup_call 1; Mailboat.Core.unlock_call 1 ] ])))

let run_kvs ~strategy () =
  Printf.printf "Journaled key-value store (2 keys, exhaustive) [strategy=%s]:\n" (E.strategy_name strategy);
  let module J = Journal.Txn_log in
  let module K = Journal.Kvs in
  let b = Disk.Block.of_string in
  let p = K.params ~n_keys:2 () in
  report "kvs: put || get + crash"
    (refinement_result
       (rcheck ~strategy
          (K.checker_config p ~max_crashes:1
             [ [ K.put_call p 0 (V.str "A") ]; [ K.get_call p 1 ] ])));
  report "kvs: txn + crash during recovery"
    (refinement_result
       (rcheck ~strategy
          (K.checker_config p ~max_crashes:2
             [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ])));
  report "kvs: async put; flush || get + crash"
    (refinement_result
       (rcheck ~strategy
          (K.checker_config p ~max_crashes:1
             [ [ K.put_async_call p 0 (V.str "A"); K.flush_call p ]; [ K.get_call p 0 ] ])))

(* The circular write-ahead log under the journal: the Circ ring against
   its atomic append/trim spec, the Wal logger/installer/flush protocol
   against the atomic multiwrite spec (crashes, crash-during-recovery,
   faults), the three seeded WAL bugs, and the journal driven through the
   [`Wal] backend. *)
let run_wal ~strategy ~faults () =
  Printf.printf "Circular write-ahead log [strategy=%s faults=%d]:\n"
    (E.strategy_name strategy) faults;
  let module C = Perennial_wal.Circ in
  let module W = Perennial_wal.Wal in
  let module J = Journal.Txn_log in
  let b = Disk.Block.of_string in
  let bug_result name = function
    | R.Refinement_violated (f, stats) ->
      Ok (Fmt.str "caught: %s (%a)" f.R.reason R.pp_stats stats)
    | R.Refinement_holds stats ->
      Error (Fmt.str "seeded bug %s NOT caught (%a)" name R.pp_stats stats)
    | R.Budget_exhausted stats -> Error (Fmt.str "budget exhausted (%a)" R.pp_stats stats)
  in
  let cly = C.layout ~base:0 ~cap:2 in
  report "circ: append || snapshot + crash"
    (refinement_result
       (rcheck ~strategy
          (C.checker_config cly ~max_crashes:1
             [ [ C.append_call cly [ (1, b "x") ] ]; [ C.snapshot_call cly ] ])));
  let wp = W.params ~n_data:1 ~cap:2 () in
  report "wal: mwrite || logger + crash"
    (refinement_result
       (rcheck ~strategy
          (W.checker_config wp ~max_crashes:1
             [ [ W.mwrite_call wp [ (0, b "A") ] ]; [ W.logger_call wp ] ])));
  report "wal: mwrite; flush || installer + crash"
    (refinement_result
       (rcheck ~strategy
          (W.checker_config wp ~max_crashes:1
             [ [ W.mwrite_call wp [ (0, b "A") ]; W.flush_call wp 1 ];
               [ W.installer_call wp ] ])));
  let wp2 = W.params ~n_data:2 ~cap:2 () in
  report "wal: multiwrite flush + crash during recovery"
    (refinement_result
       (rcheck ~strategy
          (W.checker_config wp2 ~max_crashes:2
             [ [ W.mwrite_call wp2 [ (0, b "A"); (1, b "B") ]; W.flush_call wp2 1 ] ])));
  report "wal: mwrite; flush + crash + faults"
    (refinement_result
       (rcheck ~strategy ~faults
          (W.checker_config wp ~max_crashes:1
             [ [ W.mwrite_call wp [ (0, b "A") ]; W.flush_call wp 1 ] ])));
  report "seeded: wal logger installs header before records"
    (bug_result "wal logger header-first"
       (rcheck ~strategy
          (W.checker_config wp ~max_crashes:1
             [ [ W.mwrite_call wp [ (0, b "A") ];
                 W.flush_call wp 1;
                 W.installer_call wp;
                 W.mwrite_call wp [ (0, b "B") ];
                 W.Buggy.logger_call_header_first wp ] ])));
  report "seeded: wal installer trims before applying home"
    (bug_result "wal installer trim-first"
       (rcheck ~strategy
          (W.checker_config wp ~max_crashes:1
             [ [ W.mwrite_call wp [ (0, b "A") ];
                 W.flush_call wp 1;
                 W.Buggy.installer_call_trim_first wp ] ])));
  report "seeded: wal absorption collapses across the flush barrier"
    (bug_result "wal flush absorbs logged"
       (rcheck ~strategy
          (W.checker_config wp ~max_crashes:1
             [ [ W.mwrite_call wp [ (0, b "A") ];
                 W.logger_call wp;
                 W.mwrite_call wp [ (0, b "B") ];
                 W.Buggy.flush_call_absorb_logged wp 2 ] ])));
  let ly = J.layout ~n_data:2 ~max_slots:2 in
  report "journal[wal backend]: commit || read + crash"
    (refinement_result
       (rcheck ~strategy
          (J.checker_config ~backend:`Wal ly ~max_crashes:1
             [ [ J.commit_call ~backend:`Wal ly [ (0, b "A"); (1, b "B") ] ];
               [ J.read_call ly 0 ] ])));
  report "journal[wal backend]: ft commit + crash + faults"
    (refinement_result
       (rcheck ~strategy ~faults
          (J.checker_config ~backend:`Wal ly ~max_crashes:1
             [ [ J.commit_ft_call ~backend:`Wal ly [ (0, b "A"); (1, b "B") ] ] ])))

(* The inode file system on the journal stack, checked against the atomic
   Gfs.Fs spec, plus Mailboat's spool re-hosted on it — and the seeded
   crash-safety bugs, each of which must produce a counterexample. *)
let run_fs ~strategy ~faults () =
  Printf.printf "Inode file system on the journal [strategy=%s faults=%d]:\n"
    (E.strategy_name strategy) faults;
  let module L = Perennial_fs.Layout in
  let module Fs = Perennial_fs.Fs in
  let module Sp = Perennial_fs.Spool in
  let bug_result name = function
    | R.Refinement_violated (f, stats) ->
      Ok (Fmt.str "caught: %s (%a)" f.R.reason R.pp_stats stats)
    | R.Refinement_holds stats ->
      Error (Fmt.str "seeded bug %s NOT caught (%a)" name R.pp_stats stats)
    | R.Budget_exhausted stats -> Error (Fmt.str "budget exhausted (%a)" R.pp_stats stats)
  in
  let p = Fs.params (L.v ~n_inodes:4 ~n_blocks:5 ()) in
  report "fs: create || append + crash"
    (refinement_result
       (rcheck ~strategy
          (Fs.checker_config p ~dirs:[ "a" ]
             ~files:[ ("a", "f", "xy") ]
             ~max_crashes:1
             [ [ Fs.create_call p "a" "g" ]; [ Fs.append_call p "a" "f" "z" ] ])));
  let p2 = Fs.params (L.v ~n_inodes:5 ~n_blocks:6 ()) in
  report "fs: rename (replacing) || read + crash"
    (refinement_result
       (rcheck ~strategy
          (Fs.checker_config p2 ~dirs:[ "a"; "b" ]
             ~files:[ ("a", "s", "xy"); ("b", "t", "uv") ]
             ~max_crashes:1
             [ [ Fs.rename_call p2 ~src:("a", "s") ~dst:("b", "t") ];
               [ Fs.read_call p2 "b" "t" ] ])));
  let p3 = Fs.params (L.v ~n_inodes:3 ~n_blocks:4 ()) in
  report "fs: append + crash during recovery"
    (refinement_result
       (rcheck ~strategy
          (Fs.checker_config p3 ~dirs:[ "a" ]
             ~files:[ ("a", "f", "x") ]
             ~max_crashes:2
             [ [ Fs.append_call p3 "a" "f" "y" ] ])));
  let pd = Fs.params ~durability:`Deferred (L.v ~n_inodes:3 ~n_blocks:4 ()) in
  report "fs: deferred append/fsync + crash"
    (refinement_result
       (rcheck ~strategy
          (Fs.checker_config pd ~dirs:[ "a" ]
             ~files:[ ("a", "f", "") ]
             ~max_crashes:1
             [ [ Fs.append_call pd "a" "f" "zz"; Fs.fsync_call pd "a" "f" ] ])));
  report "fs: ft create/append + crash + faults"
    (refinement_result
       (rcheck ~strategy ~faults
          (Fs.checker_config p ~dirs:[ "a" ]
             ~files:[ ("a", "f", "x") ]
             ~post:(Fs.probe p ~dirs:[ "a" ] ~files:[ ("a", "f"); ("a", "g") ])
             ~max_crashes:1
             [ [ Fs.create_ft_call p "a" "g"; Fs.append_ft_call p "a" "f" "y" ] ])));
  let pw = Fs.params ~backend:`Wal (L.v ~n_inodes:4 ~n_blocks:5 ()) in
  report "fs[wal backend]: create || append + crash"
    (refinement_result
       (rcheck ~strategy
          (Fs.checker_config pw ~dirs:[ "a" ]
             ~files:[ ("a", "f", "xy") ]
             ~max_crashes:1
             [ [ Fs.create_call pw "a" "g" ]; [ Fs.append_call pw "a" "f" "z" ] ])));
  let sp = Sp.params ~users:1 () in
  report "spool-on-fs: deliver + crash + recovery"
    (refinement_result
       (rcheck ~strategy (Sp.checker_config sp ~users:1 ~max_crashes:1 [ [ Sp.deliver_call sp 0 "ab" ] ])));
  let pb = Fs.params (L.v ~n_inodes:4 ~n_blocks:4 ()) in
  let write_probes =
    [ Fs.readdir_call pb "a"; Fs.create_call pb "a" "g"; Fs.append_call pb "a" "g" "zz";
      Fs.read_call pb "a" "f"; Fs.read_call pb "a" "g" ]
  in
  report "seeded: fs allocator double-free across crash"
    (bug_result "fs allocator double-free"
       (rcheck ~strategy
          (Fs.checker_config pb ~dirs:[ "a" ]
             ~files:[ ("a", "f", "xy") ]
             ~post:write_probes ~max_crashes:1
             [ [ Fs.Buggy.unlink_call_free_first pb "a" "f" ] ])));
  report "seeded: fs rename as two transactions"
    (bug_result "fs two-txn rename"
       (rcheck ~strategy
          (Fs.checker_config p2 ~dirs:[ "a"; "b" ]
             ~files:[ ("a", "s", "xy"); ("b", "t", "uv") ]
             ~max_crashes:1
             [ [ Fs.Buggy.rename_call_two_txns p2 ~src:("a", "s") ~dst:("b", "t") ] ])));
  let spd = Sp.params ~durability:`Deferred ~users:1 () in
  report "seeded: spool missing fsync before directory commit"
    (bug_result "spool missing fsync"
       (rcheck ~strategy
          (Sp.checker_config spd ~users:1 ~max_crashes:1
             [ [ Sp.deliver_nofsync_call spd 0 "ab" ] ])))

(* The fault-injection selection: the retry/degradation paths must HOLD
   under an exhaustive fault x crash x interleaving check, and the three
   seeded fault-handling bugs must each produce a counterexample.  This is
   the CI fault-matrix gate (`perennial_check faults --faults 2`). *)
let run_faults ~strategy ~faults () =
  Printf.printf "Fault-injection checks [strategy=%s faults=%d]:\n"
    (E.strategy_name strategy) faults;
  let module RD = Systems.Replicated_disk in
  let module J = Journal.Txn_log in
  let module K = Journal.Kvs in
  let b = Disk.Block.of_string in
  let p = K.params ~n_keys:2 () in
  let ly = J.layout ~n_data:2 ~max_slots:2 in
  let check cfg = rcheck ~faults ~strategy cfg in
  let bug_result name = function
    | R.Refinement_violated (f, stats) ->
      Ok (Fmt.str "caught: %s (%a)" f.R.reason R.pp_stats stats)
    | R.Refinement_holds stats ->
      Error (Fmt.str "seeded bug %s NOT caught (%a)" name R.pp_stats stats)
    | R.Budget_exhausted stats -> Error (Fmt.str "budget exhausted (%a)" R.pp_stats stats)
  in
  report "replicated-disk: ft write || ft read + crash + faults"
    (refinement_result
       (check
          (RD.checker_config ~size:1 ~max_crashes:1
             [ [ RD.write_ft_call 0 (V.str "x") ]; [ RD.read_ft_call 0 ] ])));
  report "journal: ft commit || ft read + crash + faults"
    (refinement_result
       (check
          (J.checker_config ly ~max_crashes:1
             [ [ J.commit_ft_call ly [ (0, b "A"); (1, b "B") ] ]; [ J.read_ft_call ly 0 ] ])));
  report "kvs: ft put; ft get + crash + faults"
    (refinement_result
       (check
          (K.checker_config p ~max_crashes:1
             [ [ K.put_ft_call p 0 (V.str "A"); K.get_ft_call p 0 ] ])));
  report "seeded: rd retry-without-re-read"
    (bug_result "rd retry-without-re-read"
       (check
          (RD.checker_config ~may_fail:false ~size:1 ~max_crashes:0
             [ [ RD.write_call 0 (V.str "x"); RD.Buggy.read_ft_call_no_retry 0 ] ])));
  report "seeded: journal torn commit record"
    (bug_result "journal torn commit record"
       (check
          (J.checker_config ly ~max_crashes:1
             [ [ J.Buggy.commit_ft_call_ignore_torn ly [ (0, b "A"); (1, b "B") ] ] ])));
  report "seeded: kvs error swallowed after partial apply"
    (bug_result "kvs swallowed apply error"
       (check
          (K.checker_config p ~max_crashes:0
             [ [ K.Buggy.put_ft_call_swallow_apply p 0 (V.str "A"); K.get_call p 0 ] ])))

(* The network-adversary selection: the exactly-once RPC stack — reply
   cache, retry/timeout/backoff, epoch-fenced leases over the sharded KV —
   must HOLD under the exhaustive network x crash x interleaving check,
   and the three seeded network bugs (no reply cache, raw retry without a
   sequence number, lease write without an epoch fence) must each produce
   a counterexample.  This is the CI net-matrix gate
   (`perennial_check net`). *)
let run_net ~strategy ~faults () =
  let module SK = Dist.Shard_kv in
  (* Network schedules branch at every send/recv/try_recv, so they blow up
     much faster than disk-fault schedules: cap the per-execution budget at
     one adversarial event.  One event is exactly what the seeded bugs need
     and keeps every instance exhaustively checkable in seconds. *)
  let nf = min faults 1 in
  Printf.printf "Network-adversary checks [strategy=%s net-events=%d]:\n"
    (E.strategy_name strategy) nf;
  let check cfg = rcheck ~faults:nf ~strategy cfg in
  (* lease instances branch on premature timeouts alone; keep their
     adversary budget at zero so expiry placement stays the only dimension *)
  let check0 cfg = rcheck ~faults:0 ~strategy cfg in
  let bug_result name = function
    | R.Refinement_violated (f, stats) ->
      Ok (Fmt.str "caught: %s (%a)" f.R.reason R.pp_stats stats)
    | R.Refinement_holds stats ->
      Error (Fmt.str "seeded bug %s NOT caught (%a)" name R.pp_stats stats)
    | R.Budget_exhausted stats -> Error (Fmt.str "budget exhausted (%a)" R.pp_stats stats)
  in
  let p1 = SK.params ~n_keys:1 ~n_clients:1 () in
  report "shard-kv: exactly-once inc + crash + net adversary"
    (refinement_result
       (check
          (SK.checker_config p1 ~max_crashes:1 ~fault_budget:nf
             [ [ SK.ninc_call p1 ~client:0 ~seq:0 0; SK.bye_call ]; [ SK.srv_call p1 0 ] ])));
  (let p = SK.params ~n_keys:1 ~n_clients:2 ~retries:0 () in
   report "shard-kv: 2-client contention + net adversary"
     (refinement_result
        (check
           (SK.checker_config p ~max_crashes:0 ~fault_budget:nf
              [ [ SK.ninc_call p ~client:0 ~seq:0 0; SK.bye_call ];
                [ SK.ninc_call p ~client:1 ~seq:0 0; SK.bye_call ];
                [ SK.srv_call p 0 ] ]))));
  (let pr = SK.params ~n_keys:1 ~n_clients:1 ~retries:1 () in
   let p0 = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
   report "shard-kv: retry storm (timeout/backoff) + net adversary"
     (refinement_result
        (check
           (SK.checker_config pr ~max_crashes:0 ~fault_budget:nf
              [ [ SK.nput_call pr ~client:0 ~seq:0 0 (V.str "A");
                  SK.nput_call p0 ~client:0 ~seq:1 0 (V.str "B");
                  SK.bye_call ];
                [ SK.srv_call pr 0 ] ]))));
  (let p = SK.params ~n_keys:2 ~n_shards:2 ~n_clients:1 ~retries:0 () in
   report "shard-kv: cross-shard put/get + net adversary"
     (refinement_result
        (check
           (SK.checker_config p ~max_crashes:0 ~fault_budget:nf
              [ [ SK.nput_call p ~client:0 ~seq:0 0 (V.str "A");
                  SK.nget_call p ~client:0 ~seq:1 1;
                  SK.bye_call ];
                [ SK.srv_call p 0 ]; [ SK.srv_call p 1 ] ]))));
  (let p = SK.params ~n_keys:1 ~n_clients:2 () in
   report "lease: 2 holders + expiry + crash (epoch fencing)"
     (refinement_result
        (check0
           (SK.checker_config p ~max_crashes:1 ~fault_budget:0
              [ [ SK.linc_call p ~client:0 0 ];
                [ SK.linc_call p ~client:1 0 ];
                [ SK.expire_call ] ]))));
  (let p = SK.params ~n_keys:1 ~n_shards:1 ~n_clients:1 ~retries:0 ~init_val:(V.str "0") () in
   report "hosted shard-kv (journal-backed) + crash + net adversary"
     (refinement_result
        (check
           (SK.Hosted.checker_config p ~max_crashes:1 ~fault_budget:nf
              [ [ SK.Hosted.nput_call p ~client:0 ~seq:0 0 (V.str "A"); SK.Hosted.bye_call ];
                [ SK.Hosted.srv_call p 0 ] ]))));
  (let p = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
   report "seeded: server without reply cache (duplicate re-executes)"
     (bug_result "no reply cache"
        (check
           (SK.checker_config p ~max_crashes:0 ~fault_budget:1
              [ [ SK.Buggy.srv_call_no_cache p 0 ];
                [ SK.ninc_call p ~client:0 ~seq:0 0; SK.bye_call ] ]))));
  (let pr = SK.params ~n_keys:1 ~n_clients:1 ~retries:1 () in
   let p0 = SK.params ~n_keys:1 ~n_clients:1 ~retries:0 () in
   report "seeded: raw retry without seq number (stale write wins)"
     (bug_result "raw retry"
        (check
           (SK.checker_config pr ~max_crashes:0 ~fault_budget:1
              [ [ SK.srv_call pr 0 ];
                [ SK.Buggy.nput_call_raw_retry pr ~client:0 ~seq:0 0 (V.str "A");
                  SK.nput_call p0 ~client:0 ~seq:1 0 (V.str "B");
                  SK.bye_call ] ]))));
  (let p = SK.params ~n_keys:1 ~n_clients:2 () in
   report "seeded: lease write without epoch fence (zombie write)"
     (bug_result "no epoch fence"
        (check0
           (SK.checker_config p ~max_crashes:0 ~fault_budget:0
              [ [ SK.Buggy.linc_call_no_fence p ~client:0 0 ];
                [ SK.Buggy.linc_call_no_fence p ~client:1 0 ];
                [ SK.expire_call ] ]))))

(* Cross-strategy guard: every strategy must reach the same verdict on the
   bundled instances, and the reduced strategies must never explore more
   executions than naive.  This is the CI pruning-regression gate. *)
let run_strategies () =
  print_endline "Exploration-strategy cross-check (verdicts + pruning guard):";
  let vx = V.str "x" and vy = V.str "y" in
  let module J = Journal.Txn_log in
  let module K = Journal.Kvs in
  let b = Disk.Block.of_string in
  let p = K.params ~n_keys:2 () in
  let ly = J.layout ~n_data:2 ~max_slots:2 in
  let instances : (string * (E.strategy -> R.result)) list =
    [
      ( "replicated-disk: 2 writers + crash + disk failure",
        fun strategy ->
          rcheck ~strategy
            (Systems.Replicated_disk.checker_config ~may_fail:true ~max_crashes:1
               ~size:1
               [ [ Systems.Replicated_disk.write_call 0 vx ];
                 [ Systems.Replicated_disk.write_call 0 vy ] ]) );
      ( "journal: commit || read + crash",
        fun strategy ->
          rcheck ~strategy
            (J.checker_config ly
               [ [ J.commit_call ly [ (0, b "A"); (1, b "B") ] ]; [ J.read_call ly 0 ] ]) );
      ( "kvs: put || get + crash",
        fun strategy ->
          rcheck ~strategy
            (K.checker_config p ~max_crashes:1
               [ [ K.put_call p 0 (V.str "A") ]; [ K.get_call p 1 ] ]) );
      ( "kvs: txn + crash during recovery",
        fun strategy ->
          rcheck ~strategy
            (K.checker_config p ~max_crashes:2
               [ [ K.txn_call p [ (0, b "A"); (1, b "B") ] ] ]) );
      ( "kvs: async put; flush || get + crash",
        fun strategy ->
          rcheck ~strategy
            (K.checker_config p ~max_crashes:1
               [ [ K.put_async_call p 0 (V.str "A"); K.flush_call p ];
                 [ K.get_call p 0 ] ]) );
    ]
  in
  let verdict = function
    | R.Refinement_holds _ -> "holds"
    | R.Refinement_violated _ -> "violated"
    | R.Budget_exhausted _ -> "budget"
  in
  let stats_of = function
    | R.Refinement_holds st | R.Refinement_violated (_, st) | R.Budget_exhausted st -> st
  in
  List.iter
    (fun (name, run) ->
      let res = List.map (fun s -> (s, run s)) E.all_strategies in
      let naive = List.assoc E.Naive res in
      let problems =
        List.filter_map
          (fun (s, r) ->
            if verdict r <> verdict naive then
              Some
                (Fmt.str "%s verdict %s, naive %s" (E.strategy_name s) (verdict r)
                   (verdict naive))
            else if (stats_of r).R.executions > (stats_of naive).R.executions then
              Some
                (Fmt.str "%s explored %d executions > naive's %d" (E.strategy_name s)
                   (stats_of r).R.executions (stats_of naive).R.executions)
            else None)
          res
      in
      let detail =
        String.concat " "
          (List.map
             (fun (s, r) ->
               Fmt.str "%s=%s/%d" (E.strategy_name s) (verdict r)
                 (stats_of r).R.executions)
             res)
      in
      match problems with
      | [] -> report name (Ok detail)
      | ps -> report name (Error (String.concat "; " ps)))
    instances

let () =
  let trace_file = ref None in
  let metrics = ref false in
  let coverage = ref false in
  let coverage_out = ref None in
  let explain = ref false in
  let progress = ref false in
  let strategy = ref E.Naive in
  let faults = ref 2 in
  let what = ref "all" in
  let rec parse = function
    | [] -> ()
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse rest
    | "--trace" :: [] ->
      prerr_endline "perennial_check: --trace needs a file argument";
      exit 2
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--coverage" :: rest ->
      coverage := true;
      parse rest
    | "--coverage-out" :: file :: rest ->
      coverage := true;
      coverage_out := Some file;
      parse rest
    | "--coverage-out" :: [] ->
      prerr_endline "perennial_check: --coverage-out needs a file argument";
      exit 2
    | "--explain" :: rest ->
      explain := true;
      parse rest
    | "--progress" :: rest ->
      progress := true;
      parse rest
    | "--faults" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 0 ->
        faults := n;
        parse rest
      | _ ->
        Printf.eprintf "perennial_check: --faults needs a non-negative integer, got %s\n" n;
        exit 2)
    | "--faults" :: [] ->
      prerr_endline "perennial_check: --faults needs an argument";
      exit 2
    | "--max-seconds" :: s :: rest ->
      (match float_of_string_opt s with
      | Some s when s > 0. ->
        max_secs := Some s;
        parse rest
      | _ ->
        Printf.eprintf "perennial_check: --max-seconds needs a positive number, got %s\n" s;
        exit 2)
    | "--max-seconds" :: [] ->
      prerr_endline "perennial_check: --max-seconds needs an argument";
      exit 2
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 ->
        domains := Some n;
        parse rest
      | _ ->
        Printf.eprintf "perennial_check: --domains needs a positive integer, got %s\n" n;
        exit 2)
    | "--domains" :: [] ->
      prerr_endline "perennial_check: --domains needs an argument";
      exit 2
    | "--fingerprint" :: rest ->
      fingerprint := true;
      parse rest
    | "--symmetry" :: rest ->
      fingerprint := true;
      symmetry := true;
      parse rest
    | "--strategy" :: s :: rest ->
      (match E.strategy_of_string s with
      | Some st ->
        strategy := st;
        parse rest
      | None ->
        Printf.eprintf "perennial_check: unknown strategy %s (want naive|dpor|dpor+sleep)\n" s;
        exit 2)
    | "--strategy" :: [] ->
      prerr_endline "perennial_check: --strategy needs an argument";
      exit 2
    | w :: rest ->
      what := w;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !fingerprint && !strategy <> E.Naive then begin
    prerr_endline
      "perennial_check: --fingerprint/--symmetry require --strategy naive (state \
       caching is unsound under DPOR)";
    exit 2
  end;
  let what = !what in
  (match what with
  | "outlines" | "refinement" | "kvs" | "wal" | "fs" | "faults" | "net" | "strategies" | "all"
    -> ()
  | w ->
    Printf.eprintf
      "perennial_check: unknown selection %s (want outlines|refinement|kvs|wal|fs|faults|net|strategies|all)\n"
      w;
    exit 2);
  Option.iter Obs.Trace.open_chrome !trace_file;
  if !coverage then begin
    Obs.Coverage.set_enabled true;
    Obs.Coverage.reset ()
  end;
  if !explain then begin
    E.Prov.set_enabled true;
    E.Prov.reset ()
  end;
  if !progress then Obs.Progress.enable ();
  let strategy = !strategy in
  if what = "outlines" || what = "all" then run_outlines ();
  if what = "refinement" || what = "all" then run_refinement ~strategy ();
  if what = "kvs" || what = "all" then run_kvs ~strategy ();
  if what = "wal" || what = "all" then run_wal ~strategy ~faults:!faults ();
  if what = "fs" || what = "all" then run_fs ~strategy ~faults:!faults ();
  if what = "faults" || what = "all" then run_faults ~strategy ~faults:!faults ();
  if what = "net" || what = "all" then run_net ~strategy ~faults:!faults ();
  if what = "strategies" || what = "all" then run_strategies ();
  if !progress then Obs.Progress.finish ();
  Obs.Trace.close ();
  if !coverage then begin
    Fmt.pr "@.@[<v>%a@]@." Obs.Coverage.pp_report ();
    Option.iter
      (fun file ->
        let oc = open_out file in
        output_string oc (Obs.Json.to_string (Obs.Coverage.report_json ()));
        output_char oc '\n';
        close_out oc;
        Fmt.pr "Wrote coverage report to %s@." file)
      !coverage_out
  end;
  if !explain then Fmt.pr "@.@[<v>%a@]@." E.Prov.pp_report ();
  if !metrics then Fmt.pr "@.Metrics:@.%a" (Obs.Metrics.pp ?registry:None) ();
  Printf.printf "\n%d checks passed, %d failed\n" !ok !failed;
  if !failed > 0 then exit 1
